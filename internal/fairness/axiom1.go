package fairness

import (
	"fmt"
	"sort"

	"repro/internal/eventlog"
	"repro/internal/model"
	"repro/internal/store"
)

// CheckAxiom1 audits worker fairness in task assignment:
//
//	"Given two different workers wi and wj, if Awi is similar to Awj and
//	 Cwi is similar to Cwj, and Swi is similar to Swj, then wi and wj
//	 should have access to the same tasks."
//
// Access is reconstructed from TaskOffered events in the log. For every
// pair of similar workers (all three similarity conditions at their
// thresholds), the checker compares offer sets by Jaccard overlap and
// reports a violation when the overlap falls below cfg.AccessThreshold.
// Offer sets are deduplicated: repeating the same offer neither changes the
// overlap nor the reported set sizes.
//
// Candidate pairs come from the config's candidate index (an exact
// inverted token index by default, MinHash/LSH pruning when
// cfg.CandidateIndex selects it) unless cfg.Exhaustive forces the O(n²)
// scan. Workers with empty skill vectors carry a sentinel token, so they
// pair with each other (they are trivially skill-similar) and nothing
// else.
func CheckAxiom1(st *store.Store, log *eventlog.Log, cfg Config) *Report {
	return checkAxiom1(st, AccessIndexFromLog(log), cfg, nil, true)
}

// CheckAxiom1Delta audits only the candidate pairs with at least one
// endpoint in dirty, under exactly the same similarity and access
// predicates as CheckAxiom1. It is the incremental entry point: given the
// set of workers whose attributes, skills, or offer sets changed since the
// last audit, re-checking these pairs (and dropping previously recorded
// violations that touch a dirty worker) reproduces the full audit's
// violation set — pairs of two clean workers cannot have changed status.
// Report.Checked counts only the pairs this delta pass examined.
func CheckAxiom1Delta(st *store.Store, log *eventlog.Log, cfg Config, dirty map[model.WorkerID]bool) *Report {
	return checkAxiom1(st, AccessIndexFromLog(log), cfg, dirty, false)
}

// CheckAxiom1DeltaIndexed is CheckAxiom1Delta over a caller-maintained
// AccessIndex, so long-lived auditors (internal/audit) never replay the
// whole event log per pass.
func CheckAxiom1DeltaIndexed(st *store.Store, ix *AccessIndex, cfg Config, dirty map[model.WorkerID]bool) *Report {
	return checkAxiom1(st, ix, cfg, dirty, false)
}

// CheckAxiom1Indexed is the full scan over a caller-maintained AccessIndex
// — the incremental engine's cold-start path.
func CheckAxiom1Indexed(st *store.Store, ix *AccessIndex, cfg Config) *Report {
	return checkAxiom1(st, ix, cfg, nil, true)
}

// checkAxiom1 is the shared core. full selects the complete pair scan;
// otherwise only pairs touching dirty are examined.
func checkAxiom1(st *store.Store, ix *AccessIndex, cfg Config, dirty map[model.WorkerID]bool, full bool) *Report {
	rep := &Report{Axiom: Axiom1WorkerAssignment}
	skillThr := orDefault(cfg.SkillThreshold, 0.9)
	attrThr := orDefault(cfg.AttrThreshold, 0.9)
	accessThr := orDefault(cfg.AccessThreshold, 1.0)
	measure := cfg.skillMeasure()
	policy := cfg.attrPolicy()

	// check examines one pair; callers pass a.ID < b.ID so memo keys and
	// violation subjects are canonical.
	check := func(a, b *model.Worker) {
		rep.Checked++
		if cfg.RecordCheckedPairs {
			rep.CheckedPairs = append(rep.CheckedPairs, [2]string{string(a.ID), string(b.ID)})
		}
		var sc WorkerPairScores
		if cfg.Memo != nil {
			sc = cfg.Memo.WorkerPair(a.ID, b.ID, func() WorkerPairScores {
				return WorkerPairScores{
					Skill:    measure.Func(a.Skills, b.Skills),
					Declared: policy.Similarity(a.Declared, b.Declared),
					Computed: policy.Similarity(a.Computed, b.Computed),
				}
			})
			if sc.Skill < skillThr || sc.Declared < attrThr || sc.Computed < attrThr {
				return
			}
		} else {
			if measure.Func(a.Skills, b.Skills) < skillThr {
				return
			}
			if policy.Similarity(a.Declared, b.Declared) < attrThr {
				return
			}
			if policy.Similarity(a.Computed, b.Computed) < attrThr {
				return
			}
		}
		aSet, bSet := ix.offerSet(a.ID), ix.offerSet(b.ID)
		overlap := aSet.jaccard(bSet)
		if overlap >= accessThr {
			return
		}
		rep.Violations = append(rep.Violations, Violation{
			Axiom:    Axiom1WorkerAssignment,
			Subjects: []string{string(a.ID), string(b.ID)},
			Detail: fmt.Sprintf("similar workers saw different tasks: offer overlap %.2f < %.2f (|offers| %d vs %d)",
				overlap, accessThr, aSet.size(), bSet.size()),
			Severity: accessThr - overlap,
		})
	}

	switch {
	case full || cfg.Exhaustive:
		// Full and exhaustive passes touch (nearly) every worker, so one
		// bulk snapshot is the cheap shape.
		workers := st.Workers()
		byID := make(map[model.WorkerID]*model.Worker, len(workers))
		for _, w := range workers {
			byID[w.ID] = w
		}
		switch {
		case full && cfg.Exhaustive:
			for i := 0; i < len(workers); i++ {
				for j := i + 1; j < len(workers); j++ {
					check(workers[i], workers[j])
				}
			}
		case full:
			cfg.provider(st).WorkerPairs(func(ai, bi model.WorkerID) {
				a, b := byID[ai], byID[bi]
				if a == nil || b == nil {
					// The index saw a worker the snapshot lacks (audit racing
					// mutation); the insert is still pending for the next pass.
					return
				}
				check(a, b)
			})
		default:
			for i := 0; i < len(workers); i++ {
				for j := i + 1; j < len(workers); j++ {
					if dirty[workers[i].ID] || dirty[workers[j].ID] {
						check(workers[i], workers[j])
					}
				}
			}
		}
	default:
		// Delta passes touch only dirty workers and their candidate
		// partners, so entities are fetched (and cloned) per id on first
		// use — a bulk snapshot here would cost O(n) per pass and dominate
		// small deltas at large populations.
		known := make(map[model.WorkerID]*model.Worker, 2*len(dirty))
		lookup := func(id model.WorkerID) *model.Worker {
			if w, ok := known[id]; ok {
				return w
			}
			w, err := st.Worker(id)
			if err != nil {
				w = nil // deleted, or indexed ahead of this pass
			}
			known[id] = w
			return w
		}
		dirtyIDs := make([]model.WorkerID, 0, len(dirty))
		for id := range dirty {
			if lookup(id) != nil {
				dirtyIDs = append(dirtyIDs, id)
			}
		}
		sort.Slice(dirtyIDs, func(i, j int) bool { return dirtyIDs[i] < dirtyIDs[j] })
		prov := cfg.provider(st)
		for _, did := range dirtyIDs {
			d := lookup(did)
			prov.WorkerPartners(did, func(pid model.WorkerID) {
				p := lookup(pid)
				if p == nil {
					return
				}
				if dirty[pid] && pid < did {
					return // the partner's own delta pass owns this pair
				}
				a, b := d, p
				if b.ID < a.ID {
					a, b = b, a
				}
				check(a, b)
			})
		}
	}
	sortViolations(rep.Violations)
	return rep
}

// Axiom1FromOffers is a convenience entry point for auditing an assignment
// result directly (before any simulation): it synthesises the TaskOffered
// view from an offers map instead of an event log.
func Axiom1FromOffers(st *store.Store, offers map[model.WorkerID][]model.TaskID, cfg Config) *Report {
	log := eventlog.New()
	for _, w := range st.Workers() {
		for _, t := range offers[w.ID] {
			log.MustAppend(eventlog.Event{Type: eventlog.TaskOffered, Worker: w.ID, Task: t})
		}
	}
	return CheckAxiom1(st, log, cfg)
}
