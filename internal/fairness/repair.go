package fairness

import (
	"sort"

	"repro/internal/model"
	"repro/internal/similarity"
	"repro/internal/store"
)

// This file implements the enforcement side of §3.3.1: the paper proposes
// the axioms both "for checking fairness ... in existing crowdsourcing
// systems and also for enforcing them by design". The Repair functions
// compute the minimal platform actions that bring a trace into compliance:
// extra offers for Axiom 1, pay top-ups for Axiom 3.

// OfferGrant is one additional offer the platform must make to satisfy
// Axiom 1.
type OfferGrant struct {
	Worker model.WorkerID
	Task   model.TaskID
}

// RepairAxiom1 computes the minimal additional offers that equalise access
// within every similarity class of workers: workers that are pairwise
// similar (under cfg's thresholds) are grouped by single-link closure, and
// every member of a group is granted the union of the group's offer sets.
// The input offers map is not modified; the returned grants are sorted.
//
// Granting the union is the only repair that never *removes* access (the
// alternative — intersecting offer sets — would fix the axiom by taking
// tasks away from workers, which trades one §3.1.1 harm for another).
func RepairAxiom1(st *store.Store, offers map[model.WorkerID][]model.TaskID, cfg Config) []OfferGrant {
	workers := st.Workers()
	skillThr := orDefault(cfg.SkillThreshold, 0.9)
	attrThr := orDefault(cfg.AttrThreshold, 0.9)
	measure := cfg.skillMeasure()
	policy := cfg.attrPolicy()

	similar := func(a, b *model.Worker) bool {
		return measure.Func(a.Skills, b.Skills) >= skillThr &&
			policy.Similarity(a.Declared, b.Declared) >= attrThr &&
			policy.Similarity(a.Computed, b.Computed) >= attrThr
	}

	// Union-find over similar pairs (single-link closure, matching the
	// transitive "same access" reading the checker enforces pairwise).
	parent := make([]int, len(workers))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for i := 0; i < len(workers); i++ {
		for j := i + 1; j < len(workers); j++ {
			if similar(workers[i], workers[j]) {
				ri, rj := find(i), find(j)
				if ri != rj {
					parent[rj] = ri
				}
			}
		}
	}

	// Per group: union of offered tasks; grant the difference per member.
	groupTasks := make(map[int]map[model.TaskID]bool)
	for i, w := range workers {
		r := find(i)
		set := groupTasks[r]
		if set == nil {
			set = make(map[model.TaskID]bool)
			groupTasks[r] = set
		}
		for _, t := range offers[w.ID] {
			set[t] = true
		}
	}
	var grants []OfferGrant
	for i, w := range workers {
		have := make(map[model.TaskID]bool, len(offers[w.ID]))
		for _, t := range offers[w.ID] {
			have[t] = true
		}
		for t := range groupTasks[find(i)] {
			if !have[t] {
				grants = append(grants, OfferGrant{Worker: w.ID, Task: t})
			}
		}
	}
	sort.Slice(grants, func(a, b int) bool {
		if grants[a].Worker != grants[b].Worker {
			return grants[a].Worker < grants[b].Worker
		}
		return grants[a].Task < grants[b].Task
	})
	return grants
}

// ApplyGrants returns a new offers map with the grants added.
func ApplyGrants(offers map[model.WorkerID][]model.TaskID, grants []OfferGrant) map[model.WorkerID][]model.TaskID {
	out := make(map[model.WorkerID][]model.TaskID, len(offers))
	for w, ts := range offers {
		out[w] = append([]model.TaskID(nil), ts...)
	}
	for _, g := range grants {
		out[g.Worker] = append(out[g.Worker], g.Task)
	}
	return out
}

// AudienceGrant is one additional worker a task must be shown to in order
// to satisfy Axiom 2.
type AudienceGrant struct {
	Task   model.TaskID
	Worker model.WorkerID
}

// RepairAxiom2 computes the minimal audience extensions that equalise the
// visibility of comparable cross-requester tasks: tasks that are pairwise
// comparable (similar skills, comparable rewards, per cfg) are grouped by
// single-link closure and every task in a group is shown to the union of
// the group's audiences. Like RepairAxiom1, the repair only ever *adds*
// visibility.
func RepairAxiom2(st *store.Store, audience map[model.TaskID][]model.WorkerID, cfg Config) []AudienceGrant {
	tasks := st.Tasks()
	skillThr := orDefault(cfg.SkillThreshold, 0.9)
	rewardTol := orDefault(cfg.RewardTolerance, 0.1)
	measure := cfg.skillMeasure()

	comparable := func(a, b *model.Task) bool {
		if a.Requester == b.Requester {
			return false
		}
		return measure.Func(a.Skills, b.Skills) >= skillThr &&
			comparableRewards(a.Reward, b.Reward, rewardTol)
	}

	parent := make([]int, len(tasks))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for i := 0; i < len(tasks); i++ {
		for j := i + 1; j < len(tasks); j++ {
			if comparable(tasks[i], tasks[j]) {
				ri, rj := find(i), find(j)
				if ri != rj {
					parent[rj] = ri
				}
			}
		}
	}

	groupAudience := make(map[int]map[model.WorkerID]bool)
	for i, t := range tasks {
		r := find(i)
		set := groupAudience[r]
		if set == nil {
			set = make(map[model.WorkerID]bool)
			groupAudience[r] = set
		}
		for _, w := range audience[t.ID] {
			set[w] = true
		}
	}
	var grants []AudienceGrant
	for i, t := range tasks {
		have := make(map[model.WorkerID]bool, len(audience[t.ID]))
		for _, w := range audience[t.ID] {
			have[w] = true
		}
		for w := range groupAudience[find(i)] {
			if !have[w] {
				grants = append(grants, AudienceGrant{Task: t.ID, Worker: w})
			}
		}
	}
	sort.Slice(grants, func(a, b int) bool {
		if grants[a].Task != grants[b].Task {
			return grants[a].Task < grants[b].Task
		}
		return grants[a].Worker < grants[b].Worker
	})
	return grants
}

// ApplyAudienceGrants returns a new audience map with the grants added.
func ApplyAudienceGrants(audience map[model.TaskID][]model.WorkerID, grants []AudienceGrant) map[model.TaskID][]model.WorkerID {
	out := make(map[model.TaskID][]model.WorkerID, len(audience))
	for t, ws := range audience {
		out[t] = append([]model.WorkerID(nil), ws...)
	}
	for _, g := range grants {
		out[g.Task] = append(out[g.Task], g.Worker)
	}
	return out
}

// PayAdjustment is one top-up payment owed to bring a contribution's pay up
// to its similarity cluster's maximum.
type PayAdjustment struct {
	Contribution model.ContributionID
	Worker       model.WorkerID
	Task         model.TaskID
	// Delta is the additional amount owed (always > 0).
	Delta float64
}

// RepairAxiom3 computes the pay top-ups that satisfy Axiom 3 without ever
// reducing anyone's pay: within each similarity cluster of contributions to
// the same task, every member is raised to the cluster maximum. This is the
// §3.1.1 wrongful-rejection remedy as a ledger operation — a rejected
// contribution that is demonstrably equivalent to an accepted one gets the
// accepted pay.
func RepairAxiom3(st *store.Store, cfg Config) []PayAdjustment {
	simThr := orDefault(cfg.ContributionThreshold, 0.8)
	var out []PayAdjustment
	for _, t := range st.Tasks() {
		contribs := st.ContributionsByTask(t.ID)
		n := len(contribs)
		if n < 2 {
			continue
		}
		parent := make([]int, n)
		for i := range parent {
			parent[i] = i
		}
		var find func(int) int
		find = func(x int) int {
			for parent[x] != x {
				parent[x] = parent[parent[x]]
				x = parent[x]
			}
			return x
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if contribs[i].Worker == contribs[j].Worker {
					continue
				}
				if similarity.ContributionSimilarity(contribs[i], contribs[j]) >= simThr {
					ri, rj := find(i), find(j)
					if ri != rj {
						parent[rj] = ri
					}
				}
			}
		}
		maxPay := make(map[int]float64)
		for i, c := range contribs {
			r := find(i)
			if c.Paid > maxPay[r] {
				maxPay[r] = c.Paid
			}
		}
		for i, c := range contribs {
			if target := maxPay[find(i)]; target > c.Paid {
				out = append(out, PayAdjustment{
					Contribution: c.ID, Worker: c.Worker, Task: t.ID,
					Delta: target - c.Paid,
				})
			}
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Contribution < out[b].Contribution })
	return out
}

// TotalAdjustment sums the deltas — the cost to the requesters of bringing
// the trace into Axiom-3 compliance.
func TotalAdjustment(adjs []PayAdjustment) float64 {
	var t float64
	for _, a := range adjs {
		t += a.Delta
	}
	return t
}
