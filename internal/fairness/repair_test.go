package fairness

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/eventlog"
	"repro/internal/model"
	"repro/internal/store"
)

func TestRepairAxiom1GrantsUnion(t *testing.T) {
	s := twinStore(t)
	offers := map[model.WorkerID][]model.TaskID{
		"w1": {"t1", "t2"},
		"w2": {"t1"},
	}
	grants := RepairAxiom1(s, offers, DefaultConfig())
	if len(grants) != 1 || grants[0].Worker != "w2" || grants[0].Task != "t2" {
		t.Fatalf("grants = %v", grants)
	}
	// After applying the grants, the checker must pass.
	repaired := ApplyGrants(offers, grants)
	rep := Axiom1FromOffers(s, repaired, DefaultConfig())
	if !rep.Satisfied() {
		t.Fatalf("repair incomplete: %v", rep.Violations)
	}
	// The original offers map must be untouched.
	if len(offers["w2"]) != 1 {
		t.Fatal("input offers mutated")
	}
}

func TestRepairAxiom1NeverRemovesAccess(t *testing.T) {
	s := twinStore(t)
	offers := map[model.WorkerID][]model.TaskID{
		"w1": {"t1"},
		"w2": {"t2"},
	}
	grants := RepairAxiom1(s, offers, DefaultConfig())
	repaired := ApplyGrants(offers, grants)
	// Both twins end with both tasks; nothing was taken away.
	for _, w := range []model.WorkerID{"w1", "w2"} {
		if len(repaired[w]) != 2 {
			t.Fatalf("worker %s offers = %v", w, repaired[w])
		}
	}
}

func TestRepairAxiom1NoViolationsNoGrants(t *testing.T) {
	s := twinStore(t)
	offers := map[model.WorkerID][]model.TaskID{
		"w1": {"t1"},
		"w2": {"t1"},
	}
	if grants := RepairAxiom1(s, offers, DefaultConfig()); len(grants) != 0 {
		t.Fatalf("grants on a compliant trace: %v", grants)
	}
}

func TestRepairAxiom1TransitiveGroups(t *testing.T) {
	// Three mutually similar workers with pairwise-different offers must
	// all converge on the union.
	u := model.MustUniverse("go")
	s := store.New(u)
	if err := s.PutRequester(&model.Requester{ID: "r"}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		w := &model.Worker{
			ID:       model.WorkerID(fmt.Sprintf("w%d", i)),
			Computed: model.Attributes{model.AttrAcceptanceRatio: model.Num(0.9)},
			Skills:   u.MustVector("go"),
		}
		if err := s.PutWorker(w); err != nil {
			t.Fatal(err)
		}
		task := &model.Task{ID: model.TaskID(fmt.Sprintf("t%d", i)), Requester: "r", Skills: u.MustVector("go"), Reward: 1}
		if err := s.PutTask(task); err != nil {
			t.Fatal(err)
		}
	}
	offers := map[model.WorkerID][]model.TaskID{
		"w0": {"t0"}, "w1": {"t1"}, "w2": {"t2"},
	}
	grants := RepairAxiom1(s, offers, DefaultConfig())
	if len(grants) != 6 { // each worker gains the two tasks it lacks
		t.Fatalf("grants = %v", grants)
	}
	rep := Axiom1FromOffers(s, ApplyGrants(offers, grants), DefaultConfig())
	if !rep.Satisfied() {
		t.Fatalf("transitive repair incomplete: %v", rep.Violations)
	}
}

func TestRepairAxiom2EqualisesAudiences(t *testing.T) {
	s := twinStore(t) // t1 (r1) and t2 (r2) are comparable
	audience := map[model.TaskID][]model.WorkerID{
		"t1": {"w1", "w2"},
		"t2": {"w1"},
	}
	grants := RepairAxiom2(s, audience, DefaultConfig())
	if len(grants) != 1 || grants[0].Task != "t2" || grants[0].Worker != "w2" {
		t.Fatalf("grants = %v", grants)
	}
	// After applying, rebuild an offer log and verify Axiom 2 holds.
	repaired := ApplyAudienceGrants(audience, grants)
	log := eventlog.New()
	for _, tid := range []model.TaskID{"t1", "t2", "t3"} {
		for _, w := range repaired[tid] {
			log.MustAppend(eventlog.Event{Type: eventlog.TaskOffered, Task: tid, Worker: w})
		}
	}
	if rep := CheckAxiom2(s, log, DefaultConfig()); !rep.Satisfied() {
		t.Fatalf("repair incomplete: %v", rep.Violations)
	}
	// The input map must be untouched.
	if len(audience["t2"]) != 1 {
		t.Fatal("input audience mutated")
	}
}

func TestRepairAxiom2IgnoresIncomparable(t *testing.T) {
	s := twinStore(t) // t3 has different skills and reward 5.0
	audience := map[model.TaskID][]model.WorkerID{
		"t1": {"w1"},
		"t2": {"w1"},
		"t3": {"w3"},
	}
	grants := RepairAxiom2(s, audience, DefaultConfig())
	for _, g := range grants {
		if g.Task == "t3" {
			t.Fatalf("incomparable task repaired: %v", g)
		}
	}
}

func TestRepairAxiom3TopsUpToMax(t *testing.T) {
	s := twinStore(t)
	same := "identical answer text for the similarity check to cluster on"
	for i, paid := range []float64{2.0, 1.0, 0.0} {
		worker := model.WorkerID(fmt.Sprintf("w%d", i+1))
		if i == 2 {
			worker = "w3"
		}
		c := &model.Contribution{
			ID: model.ContributionID(fmt.Sprintf("c%d", i)), Task: "t1",
			Worker: worker, Text: same, Quality: 0.9,
			Accepted: i == 0, Paid: paid,
		}
		if err := s.PutContribution(c); err != nil {
			t.Fatal(err)
		}
	}
	adjs := RepairAxiom3(s, DefaultConfig())
	if len(adjs) != 2 {
		t.Fatalf("adjustments = %v", adjs)
	}
	if math.Abs(TotalAdjustment(adjs)-3.0) > 1e-9 { // (2-1) + (2-0)
		t.Fatalf("total = %v, want 3", TotalAdjustment(adjs))
	}
	// Deltas are always positive and target the cluster max.
	for _, a := range adjs {
		if a.Delta <= 0 {
			t.Fatalf("non-positive delta: %v", a)
		}
	}
}

func TestRepairAxiom3AfterApplySatisfies(t *testing.T) {
	s := twinStore(t)
	same := "identical answer text"
	for i, paid := range []float64{2.0, 0.5} {
		c := &model.Contribution{
			ID: model.ContributionID(fmt.Sprintf("c%d", i)), Task: "t1",
			Worker: model.WorkerID(fmt.Sprintf("w%d", i+1)),
			Text:   same, Quality: 0.9, Accepted: true, Paid: paid,
		}
		if err := s.PutContribution(c); err != nil {
			t.Fatal(err)
		}
	}
	cfg := DefaultConfig()
	adjs := RepairAxiom3(s, cfg)
	// Apply the top-ups back into the store.
	for _, a := range adjs {
		c, err := s.Contribution(a.Contribution)
		if err != nil {
			t.Fatal(err)
		}
		c.Paid += a.Delta
		if err := s.UpdateContribution(c); err != nil {
			t.Fatal(err)
		}
	}
	if rep := CheckAxiom3(s, cfg); !rep.Satisfied() {
		t.Fatalf("repair incomplete: %v", rep.Violations)
	}
}

func TestRepairAxiom3IgnoresDissimilar(t *testing.T) {
	s := twinStore(t)
	texts := []string{"databases and indexing", "zzz qqq unrelated spam"}
	for i, text := range texts {
		c := &model.Contribution{
			ID: model.ContributionID(fmt.Sprintf("c%d", i)), Task: "t1",
			Worker: model.WorkerID(fmt.Sprintf("w%d", i+1)),
			Text:   text, Quality: 0.9, Accepted: true, Paid: float64(i),
		}
		if err := s.PutContribution(c); err != nil {
			t.Fatal(err)
		}
	}
	if adjs := RepairAxiom3(s, DefaultConfig()); len(adjs) != 0 {
		t.Fatalf("dissimilar contributions adjusted: %v", adjs)
	}
}
