package fairness

import (
	"fmt"
	"math"

	"repro/internal/eventlog"
	"repro/internal/model"
	"repro/internal/store"
)

// CheckAxiom2 audits requester fairness in task assignment:
//
//	"Given two tasks ti and tj posted by different requesters, if the
//	 required skills Sti and Stj are similar, and the two tasks offer
//	 comparable rewards, then ti and tj should be shown to the same set
//	 of workers."
//
// Audiences are reconstructed from TaskOffered events. Skill similarity
// uses cfg.SkillMeasure (the paper suggests cosine); rewards are comparable
// when their relative difference is within cfg.RewardTolerance. A pair of
// comparable tasks whose audiences overlap (Jaccard) below
// cfg.AccessThreshold is a violation.
func CheckAxiom2(st *store.Store, log *eventlog.Log, cfg Config) *Report {
	rep := &Report{Axiom: Axiom2RequesterAssignment}
	audience := audienceFromLog(log)
	tasks := st.Tasks()
	byID := make(map[model.TaskID]*model.Task, len(tasks))
	for _, t := range tasks {
		byID[t.ID] = t
	}

	skillThr := orDefault(cfg.SkillThreshold, 0.9)
	rewardTol := orDefault(cfg.RewardTolerance, 0.1)
	accessThr := orDefault(cfg.AccessThreshold, 1.0)
	measure := cfg.skillMeasure()

	audienceSets := make(map[model.TaskID]idSet[model.WorkerID], len(audience))
	for id, ws := range audience {
		audienceSets[id] = newIDSet(ws)
	}
	emptySet := newIDSet[model.WorkerID](nil)
	setOf := func(id model.TaskID) idSet[model.WorkerID] {
		if s, ok := audienceSets[id]; ok {
			return s
		}
		return emptySet
	}

	check := func(a, b *model.Task) {
		rep.Checked++
		if measure.Func(a.Skills, b.Skills) < skillThr {
			return
		}
		if !comparableRewards(a.Reward, b.Reward, rewardTol) {
			return
		}
		overlap := setOf(a.ID).jaccard(setOf(b.ID))
		if overlap >= accessThr {
			return
		}
		rep.Violations = append(rep.Violations, Violation{
			Axiom:    Axiom2RequesterAssignment,
			Subjects: []string{string(a.ID), string(b.ID)},
			Detail: fmt.Sprintf("comparable tasks (rewards %.2f vs %.2f) reached different audiences: overlap %.2f < %.2f",
				a.Reward, b.Reward, overlap, accessThr),
			Severity: accessThr - overlap,
		})
	}

	if cfg.Exhaustive {
		for i := 0; i < len(tasks); i++ {
			for j := i + 1; j < len(tasks); j++ {
				if tasks[i].Requester == tasks[j].Requester {
					continue
				}
				check(tasks[i], tasks[j])
			}
		}
	} else {
		for _, pair := range st.CandidateTaskPairs() {
			check(byID[pair[0]], byID[pair[1]])
		}
		var skillless []*model.Task
		for _, t := range tasks {
			if t.Skills.Count() == 0 {
				skillless = append(skillless, t)
			}
		}
		for i := 0; i < len(skillless); i++ {
			for j := i + 1; j < len(skillless); j++ {
				if skillless[i].Requester == skillless[j].Requester {
					continue
				}
				check(skillless[i], skillless[j])
			}
		}
	}
	sortViolations(rep.Violations)
	return rep
}

// comparableRewards reports whether two rewards differ relatively by at
// most tol (relative to the larger reward; two zero rewards are
// comparable).
func comparableRewards(a, b, tol float64) bool {
	hi := math.Max(math.Abs(a), math.Abs(b))
	if hi == 0 {
		return true
	}
	return math.Abs(a-b)/hi <= tol
}
