package fairness

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/eventlog"
	"repro/internal/model"
	"repro/internal/store"
)

// CheckAxiom2 audits requester fairness in task assignment:
//
//	"Given two tasks ti and tj posted by different requesters, if the
//	 required skills Sti and Stj are similar, and the two tasks offer
//	 comparable rewards, then ti and tj should be shown to the same set
//	 of workers."
//
// Audiences are reconstructed from TaskOffered events. Skill similarity
// uses cfg.SkillMeasure (the paper suggests cosine); rewards are comparable
// when their relative difference is within cfg.RewardTolerance. A pair of
// comparable tasks whose audiences overlap (Jaccard) below
// cfg.AccessThreshold is a violation.
func CheckAxiom2(st *store.Store, log *eventlog.Log, cfg Config) *Report {
	return checkAxiom2(st, AccessIndexFromLog(log), cfg, nil, true)
}

// CheckAxiom2Delta audits only cross-requester candidate pairs with at
// least one endpoint in dirty — the tasks whose audiences changed or that
// were newly posted since the last audit. Same predicates as CheckAxiom2;
// Report.Checked counts only the pairs this delta pass examined.
func CheckAxiom2Delta(st *store.Store, log *eventlog.Log, cfg Config, dirty map[model.TaskID]bool) *Report {
	return checkAxiom2(st, AccessIndexFromLog(log), cfg, dirty, false)
}

// CheckAxiom2DeltaIndexed is CheckAxiom2Delta over a caller-maintained
// AccessIndex.
func CheckAxiom2DeltaIndexed(st *store.Store, ix *AccessIndex, cfg Config, dirty map[model.TaskID]bool) *Report {
	return checkAxiom2(st, ix, cfg, dirty, false)
}

// CheckAxiom2Indexed is the full scan over a caller-maintained AccessIndex
// — the incremental engine's cold-start path.
func CheckAxiom2Indexed(st *store.Store, ix *AccessIndex, cfg Config) *Report {
	return checkAxiom2(st, ix, cfg, nil, true)
}

func checkAxiom2(st *store.Store, ix *AccessIndex, cfg Config, dirty map[model.TaskID]bool, full bool) *Report {
	rep := &Report{Axiom: Axiom2RequesterAssignment}
	skillThr := orDefault(cfg.SkillThreshold, 0.9)
	rewardTol := orDefault(cfg.RewardTolerance, 0.1)
	accessThr := orDefault(cfg.AccessThreshold, 1.0)
	measure := cfg.skillMeasure()

	// check examines one pair; callers pass a.ID < b.ID and distinct
	// requesters.
	check := func(a, b *model.Task) {
		rep.Checked++
		if cfg.RecordCheckedPairs {
			rep.CheckedPairs = append(rep.CheckedPairs, [2]string{string(a.ID), string(b.ID)})
		}
		var skillSim float64
		if cfg.Memo != nil {
			skillSim = cfg.Memo.TaskPair(a.ID, b.ID, func() float64 {
				return measure.Func(a.Skills, b.Skills)
			})
		} else {
			skillSim = measure.Func(a.Skills, b.Skills)
		}
		if skillSim < skillThr {
			return
		}
		if !comparableRewards(a.Reward, b.Reward, rewardTol) {
			return
		}
		overlap := ix.audienceSet(a.ID).jaccard(ix.audienceSet(b.ID))
		if overlap >= accessThr {
			return
		}
		rep.Violations = append(rep.Violations, Violation{
			Axiom:    Axiom2RequesterAssignment,
			Subjects: []string{string(a.ID), string(b.ID)},
			Detail: fmt.Sprintf("comparable tasks (rewards %.2f vs %.2f) reached different audiences: overlap %.2f < %.2f",
				a.Reward, b.Reward, overlap, accessThr),
			Severity: accessThr - overlap,
		})
	}

	switch {
	case full || cfg.Exhaustive:
		// Full and exhaustive passes touch (nearly) every task, so one bulk
		// snapshot is the cheap shape.
		tasks := st.Tasks()
		byID := make(map[model.TaskID]*model.Task, len(tasks))
		for _, t := range tasks {
			byID[t.ID] = t
		}
		switch {
		case full && cfg.Exhaustive:
			for i := 0; i < len(tasks); i++ {
				for j := i + 1; j < len(tasks); j++ {
					if tasks[i].Requester == tasks[j].Requester {
						continue
					}
					check(tasks[i], tasks[j])
				}
			}
		case full:
			// The index knows nothing of requesters — same-requester pairs
			// are filtered here, as the axiom quantifies over distinct
			// requesters.
			cfg.provider(st).TaskPairs(func(ai, bi model.TaskID) {
				a, b := byID[ai], byID[bi]
				if a == nil || b == nil {
					// Posted after the task snapshot was taken (audit racing
					// mutation); the insert is still pending for the next
					// pass.
					return
				}
				if a.Requester == b.Requester {
					return
				}
				check(a, b)
			})
		default:
			for i := 0; i < len(tasks); i++ {
				for j := i + 1; j < len(tasks); j++ {
					if tasks[i].Requester == tasks[j].Requester {
						continue
					}
					if dirty[tasks[i].ID] || dirty[tasks[j].ID] {
						check(tasks[i], tasks[j])
					}
				}
			}
		}
	default:
		// Delta passes touch only dirty tasks and their candidate partners;
		// fetch per id on first use rather than snapshotting all n tasks.
		known := make(map[model.TaskID]*model.Task, 2*len(dirty))
		lookup := func(id model.TaskID) *model.Task {
			if t, ok := known[id]; ok {
				return t
			}
			t, err := st.Task(id)
			if err != nil {
				t = nil // deleted, or indexed ahead of this pass
			}
			known[id] = t
			return t
		}
		dirtyIDs := make([]model.TaskID, 0, len(dirty))
		for id := range dirty {
			if lookup(id) != nil {
				dirtyIDs = append(dirtyIDs, id)
			}
		}
		sort.Slice(dirtyIDs, func(i, j int) bool { return dirtyIDs[i] < dirtyIDs[j] })
		prov := cfg.provider(st)
		for _, did := range dirtyIDs {
			d := lookup(did)
			prov.TaskPartners(did, func(pid model.TaskID) {
				p := lookup(pid)
				if p == nil {
					return
				}
				if p.Requester == d.Requester {
					return
				}
				if dirty[pid] && pid < did {
					return // the partner's own delta pass owns this pair
				}
				a, b := d, p
				if b.ID < a.ID {
					a, b = b, a
				}
				check(a, b)
			})
		}
	}
	sortViolations(rep.Violations)
	return rep
}

// comparableRewards reports whether two rewards differ relatively by at
// most tol (relative to the larger reward; two zero rewards are
// comparable).
func comparableRewards(a, b, tol float64) bool {
	hi := math.Max(math.Abs(a), math.Abs(b))
	if hi == 0 {
		return true
	}
	return math.Abs(a-b)/hi <= tol
}
