package fairness

import (
	"fmt"
	"math"

	"repro/internal/eventlog"
	"repro/internal/model"
	"repro/internal/par"
	"repro/internal/store"
)

// CheckAxiom2 audits requester fairness in task assignment:
//
//	"Given two tasks ti and tj posted by different requesters, if the
//	 required skills Sti and Stj are similar, and the two tasks offer
//	 comparable rewards, then ti and tj should be shown to the same set
//	 of workers."
//
// Audiences are reconstructed from TaskOffered events. Skill similarity
// uses cfg.SkillMeasure (the paper suggests cosine); rewards are comparable
// when their relative difference is within cfg.RewardTolerance. A pair of
// comparable tasks whose audiences overlap (Jaccard) below
// cfg.AccessThreshold is a violation.
func CheckAxiom2(st *store.Store, log *eventlog.Log, cfg Config) *Report {
	return checkAxiom2(st, AccessIndexFromLog(log), cfg, nil, true)
}

// CheckAxiom2Delta audits only cross-requester candidate pairs with at
// least one endpoint in dirty — the tasks whose audiences changed or that
// were newly posted since the last audit. Same predicates as CheckAxiom2;
// Report.Checked counts only the pairs this delta pass examined.
func CheckAxiom2Delta(st *store.Store, log *eventlog.Log, cfg Config, dirty map[model.TaskID]bool) *Report {
	return checkAxiom2(st, AccessIndexFromLog(log), cfg, sortedIDList(dirty), false)
}

// CheckAxiom2DeltaIndexed is CheckAxiom2Delta over a caller-maintained
// AccessIndex. dirty must be sorted ascending and deduplicated (see
// CheckAxiom1DeltaIndexed).
func CheckAxiom2DeltaIndexed(st *store.Store, ix *AccessIndex, cfg Config, dirty []model.TaskID) *Report {
	return checkAxiom2(st, ix, cfg, dirty, false)
}

// CheckAxiom2Indexed is the full scan over a caller-maintained AccessIndex
// — the incremental engine's cold-start path.
func CheckAxiom2Indexed(st *store.Store, ix *AccessIndex, cfg Config) *Report {
	return checkAxiom2(st, ix, cfg, nil, true)
}

// checkAxiom2 is the shared core, sharded exactly like checkAxiom1: every
// path writes into disjoint per-index pairSlots merged in order, so
// parallel runs stay byte-identical to serial ones. dirty must be sorted
// ascending and deduplicated.
func checkAxiom2(st *store.Store, ix *AccessIndex, cfg Config, dirty []model.TaskID, full bool) *Report {
	rep := &Report{Axiom: Axiom2RequesterAssignment}
	skillThr := orDefault(cfg.SkillThreshold, 0.9)
	rewardTol := orDefault(cfg.RewardTolerance, 0.1)
	accessThr := orDefault(cfg.AccessThreshold, 1.0)
	measure := cfg.skillMeasure()

	// check examines one pair into the calling shard's slot; callers pass
	// a.ID < b.ID and distinct requesters.
	check := func(sl *pairSlot, a, b *model.Task) {
		sl.checked++
		if cfg.RecordCheckedPairs {
			sl.pairs = append(sl.pairs, [2]string{string(a.ID), string(b.ID)})
		}
		var skillSim float64
		if cfg.Memo != nil {
			skillSim = cfg.Memo.TaskPair(a.ID, b.ID, func() float64 {
				return measure.Func(a.Skills, b.Skills)
			})
		} else {
			skillSim = measure.Func(a.Skills, b.Skills)
		}
		if skillSim < skillThr {
			return
		}
		if !comparableRewards(a.Reward, b.Reward, rewardTol) {
			return
		}
		overlap := ix.audienceSet(a.ID).jaccard(ix.audienceSet(b.ID))
		if overlap >= accessThr {
			return
		}
		sl.viols = append(sl.viols, Violation{
			Axiom:    Axiom2RequesterAssignment,
			Subjects: []string{string(a.ID), string(b.ID)},
			Detail: fmt.Sprintf("comparable tasks (rewards %.2f vs %.2f) reached different audiences: overlap %.2f < %.2f",
				a.Reward, b.Reward, overlap, accessThr),
			Severity: accessThr - overlap,
		})
	}

	switch {
	case full || cfg.Exhaustive:
		// Full and exhaustive passes touch (nearly) every task, so one bulk
		// snapshot is the cheap shape. Shard by outer task.
		tasks := st.Tasks()
		slots := make([]pairSlot, len(tasks))
		switch {
		case cfg.Exhaustive && full:
			par.For(len(tasks), 0, func(i int) {
				sl := &slots[i]
				for j := i + 1; j < len(tasks); j++ {
					if tasks[i].Requester == tasks[j].Requester {
						continue
					}
					check(sl, tasks[i], tasks[j])
				}
			})
		case cfg.Exhaustive:
			par.For(len(tasks), 0, func(i int) {
				sl := &slots[i]
				iDirty := containsSorted(dirty, tasks[i].ID)
				for j := i + 1; j < len(tasks); j++ {
					if tasks[i].Requester == tasks[j].Requester {
						continue
					}
					if iDirty || containsSorted(dirty, tasks[j].ID) {
						check(sl, tasks[i], tasks[j])
					}
				}
			})
		default:
			byID := make(map[model.TaskID]*model.Task, len(tasks))
			for _, t := range tasks {
				byID[t.ID] = t
			}
			prov := cfg.provider(st)
			// The index knows nothing of requesters — same-requester pairs
			// are filtered here, as the axiom quantifies over distinct
			// requesters. Owning each pair at its smaller endpoint
			// enumerates the index pair set exactly once, sharded.
			par.For(len(tasks), 0, func(i int) {
				sl := &slots[i]
				a := tasks[i]
				prov.TaskPartners(a.ID, func(pid model.TaskID) {
					if pid <= a.ID {
						return // the pair's smaller endpoint owns it
					}
					b := byID[pid]
					if b == nil {
						// Posted after the task snapshot was taken (audit
						// racing mutation); the insert is still pending for
						// the next pass.
						return
					}
					if a.Requester == b.Requester {
						return
					}
					check(sl, a, b)
				})
			})
		}
		mergeSlots(rep, slots)
	default:
		// Delta passes touch only dirty tasks and their candidate partners;
		// resolve the union of needed tasks once rather than snapshotting
		// all n. Same three sharded phases as checkAxiom1.
		prov := cfg.provider(st)
		ds := taskDeltaPool.Get().(*deltaScratch[model.TaskID, model.Task])
		defer taskDeltaPool.Put(ds)
		ds.reset(len(dirty))
		par.For(len(dirty), 0, func(k int) {
			prov.TaskPartners(dirty[k], func(pid model.TaskID) {
				ds.partners[k] = append(ds.partners[k], pid)
			})
		})
		for _, id := range dirty {
			ds.need[id] = true
		}
		for _, ps := range ds.partners {
			for _, pid := range ps {
				ds.need[pid] = true
			}
		}
		table := ds.fetch(st.Task)
		if cfg.RecordCheckedPairs {
			ds.carvePairs()
		}
		par.For(len(dirty), 0, func(k int) {
			did := dirty[k]
			d := table[did]
			if d == nil {
				return // deleted, or indexed ahead of this pass
			}
			sl := &ds.slots[k]
			for _, pid := range ds.partners[k] {
				p := table[pid]
				if p == nil {
					continue
				}
				if p.Requester == d.Requester {
					continue
				}
				if pid < did && containsSorted(dirty, pid) {
					continue // the partner's own shard owns this pair
				}
				a, b := d, p
				if b.ID < a.ID {
					a, b = b, a
				}
				check(sl, a, b)
			}
		})
		mergeSlots(rep, ds.slots)
	}
	sortViolations(rep.Violations)
	return rep
}

// comparableRewards reports whether two rewards differ relatively by at
// most tol (relative to the larger reward; two zero rewards are
// comparable).
func comparableRewards(a, b, tol float64) bool {
	hi := math.Max(math.Abs(a), math.Abs(b))
	if hi == 0 {
		return true
	}
	return math.Abs(a-b)/hi <= tol
}
