package fairness

import (
	"fmt"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/eventlog"
	"repro/internal/model"
	"repro/internal/stats"
	"repro/internal/store"
)

// twinStore builds a store with two identical workers (w1, w2), one
// differing worker (w3), and two comparable tasks from different requesters.
func twinStore(t *testing.T) *store.Store {
	t.Helper()
	u := model.MustUniverse("go", "nlp")
	s := store.New(u)
	for _, r := range []string{"r1", "r2"} {
		if err := s.PutRequester(&model.Requester{ID: model.RequesterID(r)}); err != nil {
			t.Fatal(err)
		}
	}
	twin := func(id string) *model.Worker {
		return &model.Worker{
			ID:       model.WorkerID(id),
			Declared: model.Attributes{"country": model.Str("jp")},
			Computed: model.Attributes{model.AttrAcceptanceRatio: model.Num(0.9)},
			Skills:   u.MustVector("go"),
		}
	}
	for _, w := range []*model.Worker{
		twin("w1"), twin("w2"),
		{
			ID:       "w3",
			Declared: model.Attributes{"country": model.Str("fr")},
			Computed: model.Attributes{model.AttrAcceptanceRatio: model.Num(0.2)},
			Skills:   u.MustVector("nlp"),
		},
	} {
		if err := s.PutWorker(w); err != nil {
			t.Fatal(err)
		}
	}
	for _, task := range []*model.Task{
		{ID: "t1", Requester: "r1", Skills: u.MustVector("go"), Reward: 1.0},
		{ID: "t2", Requester: "r2", Skills: u.MustVector("go"), Reward: 1.05},
		{ID: "t3", Requester: "r2", Skills: u.MustVector("nlp"), Reward: 5.0},
	} {
		if err := s.PutTask(task); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func offerLog(offers map[string][]string) *eventlog.Log {
	l := eventlog.New()
	// Deterministic iteration.
	var workers []string
	for w := range offers {
		workers = append(workers, w)
	}
	for i := 1; i < len(workers); i++ {
		for j := i; j > 0 && workers[j] < workers[j-1]; j-- {
			workers[j], workers[j-1] = workers[j-1], workers[j]
		}
	}
	for _, w := range workers {
		for _, task := range offers[w] {
			l.MustAppend(eventlog.Event{
				Type: eventlog.TaskOffered, Worker: model.WorkerID(w), Task: model.TaskID(task),
			})
		}
	}
	return l
}

func TestAxiom1DetectsUnequalAccess(t *testing.T) {
	s := twinStore(t)
	log := offerLog(map[string][]string{
		"w1": {"t1", "t2"},
		"w2": {"t1"}, // twin of w1 but saw less
	})
	rep := CheckAxiom1(s, log, DefaultConfig())
	if len(rep.Violations) != 1 {
		t.Fatalf("violations = %v", rep.Violations)
	}
	v := rep.Violations[0]
	if v.Subjects[0] != "w1" || v.Subjects[1] != "w2" {
		t.Fatalf("subjects = %v", v.Subjects)
	}
	if v.Severity <= 0 || v.Severity > 1 {
		t.Fatalf("severity = %v", v.Severity)
	}
	if !strings.Contains(v.String(), "Axiom 1") {
		t.Fatalf("violation string = %q", v)
	}
}

func TestAxiom1PassesOnEqualAccess(t *testing.T) {
	s := twinStore(t)
	log := offerLog(map[string][]string{
		"w1": {"t1", "t2"},
		"w2": {"t2", "t1"}, // same set, different order
	})
	rep := CheckAxiom1(s, log, DefaultConfig())
	if !rep.Satisfied() {
		t.Fatalf("violations = %v", rep.Violations)
	}
	if rep.Checked == 0 {
		t.Fatal("no pairs checked")
	}
}

func TestAxiom1IgnoresDissimilarWorkers(t *testing.T) {
	s := twinStore(t)
	// w3 differs in every way from w1; unequal access to it is fine. The
	// twins w1/w2 see identical sets so they cannot trip the checker.
	log := offerLog(map[string][]string{
		"w1": {"t1"},
		"w2": {"t1"},
		"w3": {"t3", "t1"},
	})
	rep := CheckAxiom1(s, log, DefaultConfig())
	if !rep.Satisfied() {
		t.Fatalf("dissimilar workers flagged: %v", rep.Violations)
	}
}

func TestAxiom1ExhaustiveMatchesIndexed(t *testing.T) {
	s := twinStore(t)
	log := offerLog(map[string][]string{
		"w1": {"t1", "t2"},
		"w2": {"t1"},
	})
	cfg := DefaultConfig()
	indexed := CheckAxiom1(s, log, cfg)
	cfg.Exhaustive = true
	exhaustive := CheckAxiom1(s, log, cfg)
	if len(indexed.Violations) != len(exhaustive.Violations) {
		t.Fatalf("indexed %d vs exhaustive %d violations",
			len(indexed.Violations), len(exhaustive.Violations))
	}
}

func TestAxiom1SkilllessWorkersCompared(t *testing.T) {
	u := model.MustUniverse("s")
	s := store.New(u)
	for _, id := range []string{"e1", "e2"} {
		if err := s.PutWorker(&model.Worker{ID: model.WorkerID(id), Skills: u.MustVector()}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.PutRequester(&model.Requester{ID: "r"}); err != nil {
		t.Fatal(err)
	}
	if err := s.PutTask(&model.Task{ID: "t", Requester: "r", Skills: u.MustVector()}); err != nil {
		t.Fatal(err)
	}
	log := offerLog(map[string][]string{"e1": {"t"}})
	rep := CheckAxiom1(s, log, DefaultConfig())
	// The skill inverted index cannot see skill-less workers; the checker
	// must still compare e1 and e2 and catch the access gap.
	if rep.Satisfied() {
		t.Fatal("skill-less worker pair not audited")
	}
}

func TestAxiom1AccessThresholdRelaxation(t *testing.T) {
	s := twinStore(t)
	log := offerLog(map[string][]string{
		"w1": {"t1", "t2"},
		"w2": {"t1"}, // overlap 0.5
	})
	cfg := DefaultConfig()
	cfg.AccessThreshold = 0.4 // platform tolerates partial overlap
	rep := CheckAxiom1(s, log, cfg)
	if !rep.Satisfied() {
		t.Fatalf("relaxed threshold still violated: %v", rep.Violations)
	}
}

func TestAxiom2DetectsUnequalAudience(t *testing.T) {
	s := twinStore(t)
	// t1 (r1) and t2 (r2) are comparable; t1 was shown to both workers,
	// t2 only to w1.
	log := offerLog(map[string][]string{
		"w1": {"t1", "t2"},
		"w2": {"t1"},
	})
	rep := CheckAxiom2(s, log, DefaultConfig())
	if len(rep.Violations) != 1 {
		t.Fatalf("violations = %v", rep.Violations)
	}
	if rep.Violations[0].Subjects[0] != "t1" || rep.Violations[0].Subjects[1] != "t2" {
		t.Fatalf("subjects = %v", rep.Violations[0].Subjects)
	}
}

func TestAxiom2IgnoresIncomparableRewards(t *testing.T) {
	u := model.MustUniverse("go")
	s := store.New(u)
	for _, r := range []string{"r1", "r2"} {
		if err := s.PutRequester(&model.Requester{ID: model.RequesterID(r)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.PutTask(&model.Task{ID: "cheap", Requester: "r1", Skills: u.MustVector("go"), Reward: 1}); err != nil {
		t.Fatal(err)
	}
	if err := s.PutTask(&model.Task{ID: "rich", Requester: "r2", Skills: u.MustVector("go"), Reward: 10}); err != nil {
		t.Fatal(err)
	}
	if err := s.PutWorker(&model.Worker{ID: "w1", Skills: u.MustVector("go")}); err != nil {
		t.Fatal(err)
	}
	log := offerLog(map[string][]string{"w1": {"cheap"}})
	rep := CheckAxiom2(s, log, DefaultConfig())
	if !rep.Satisfied() {
		t.Fatalf("incomparable-reward pair flagged: %v", rep.Violations)
	}
}

func TestAxiom2SameRequesterExcluded(t *testing.T) {
	u := model.MustUniverse("go")
	s := store.New(u)
	if err := s.PutRequester(&model.Requester{ID: "r1"}); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"a", "b"} {
		if err := s.PutTask(&model.Task{ID: model.TaskID(id), Requester: "r1", Skills: u.MustVector("go"), Reward: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.PutWorker(&model.Worker{ID: "w1", Skills: u.MustVector("go")}); err != nil {
		t.Fatal(err)
	}
	log := offerLog(map[string][]string{"w1": {"a"}})
	rep := CheckAxiom2(s, log, DefaultConfig())
	if rep.Checked != 0 {
		t.Fatalf("same-requester pairs checked: %d", rep.Checked)
	}
}

func TestAxiom3DetectsPayGap(t *testing.T) {
	s := twinStore(t)
	same := "identical answer text for the similarity check to cluster on"
	for i, paid := range []float64{2.0, 1.0} {
		c := &model.Contribution{
			ID: model.ContributionID(fmt.Sprintf("c%d", i)), Task: "t1",
			Worker: model.WorkerID(fmt.Sprintf("w%d", i+1)),
			Text:   same, Quality: 0.9, Accepted: true, Paid: paid,
		}
		if err := s.PutContribution(c); err != nil {
			t.Fatal(err)
		}
	}
	rep := CheckAxiom3(s, DefaultConfig())
	if len(rep.Violations) != 1 {
		t.Fatalf("violations = %v", rep.Violations)
	}
	if math.Abs(rep.Violations[0].Severity-0.5) > 1e-9 {
		t.Fatalf("severity = %v, want 0.5 (pay gap ratio)", rep.Violations[0].Severity)
	}
}

func TestAxiom3IgnoresSameWorker(t *testing.T) {
	s := twinStore(t)
	same := "identical answer text"
	for i, paid := range []float64{2.0, 1.0} {
		c := &model.Contribution{
			ID: model.ContributionID(fmt.Sprintf("c%d", i)), Task: "t1",
			Worker: "w1", Text: same, Quality: 0.9, Accepted: true, Paid: paid,
		}
		if err := s.PutContribution(c); err != nil {
			t.Fatal(err)
		}
	}
	rep := CheckAxiom3(s, DefaultConfig())
	if rep.Checked != 0 {
		t.Fatalf("same-worker pair checked: %d", rep.Checked)
	}
}

func TestAxiom3IgnoresDissimilarContributions(t *testing.T) {
	s := twinStore(t)
	texts := []string{
		"a comprehensive answer about databases",
		"zzz qqq xxx unrelated spam tokens",
	}
	for i, text := range texts {
		c := &model.Contribution{
			ID: model.ContributionID(fmt.Sprintf("c%d", i)), Task: "t1",
			Worker: model.WorkerID(fmt.Sprintf("w%d", i+1)),
			Text:   text, Quality: 0.9, Accepted: true, Paid: float64(i),
		}
		if err := s.PutContribution(c); err != nil {
			t.Fatal(err)
		}
	}
	rep := CheckAxiom3(s, DefaultConfig())
	if !rep.Satisfied() {
		t.Fatalf("dissimilar contributions flagged: %v", rep.Violations)
	}
}

func TestAxiom4FlagsUndetectedSpammer(t *testing.T) {
	s := twinStore(t) // w3 has acceptance ratio 0.2
	log := eventlog.New()
	rep := CheckAxiom4(s, log)
	if len(rep.Violations) != 1 || rep.Violations[0].Subjects[0] != "w3" {
		t.Fatalf("violations = %v", rep.Violations)
	}
	// Once the platform flags the worker, the axiom is satisfied.
	log.MustAppend(eventlog.Event{Type: eventlog.WorkerFlagged, Worker: "w3"})
	rep = CheckAxiom4(s, log)
	if !rep.Satisfied() {
		t.Fatalf("flagged worker still a violation: %v", rep.Violations)
	}
}

func TestAxiom5DetectsInterruption(t *testing.T) {
	l := eventlog.New()
	l.MustAppend(eventlog.Event{Time: 1, Type: eventlog.TaskStarted, Worker: "w1", Task: "t1"})
	l.MustAppend(eventlog.Event{Time: 2, Type: eventlog.TaskStarted, Worker: "w2", Task: "t1"})
	l.MustAppend(eventlog.Event{Time: 3, Type: eventlog.TaskSubmitted, Worker: "w1", Task: "t1"})
	l.MustAppend(eventlog.Event{Time: 4, Type: eventlog.TaskInterrupted, Worker: "w2", Task: "t1"})
	rep := CheckAxiom5(l)
	if rep.Checked != 2 {
		t.Fatalf("checked = %d", rep.Checked)
	}
	if len(rep.Violations) != 1 || rep.Violations[0].Subjects[0] != "w2" {
		t.Fatalf("violations = %v", rep.Violations)
	}
}

func TestAxiom5InterruptWithoutStartIgnored(t *testing.T) {
	l := eventlog.New()
	l.MustAppend(eventlog.Event{Time: 1, Type: eventlog.TaskInterrupted, Worker: "w1", Task: "t1"})
	rep := CheckAxiom5(l)
	if !rep.Satisfied() {
		t.Fatalf("phantom interruption flagged: %v", rep.Violations)
	}
}

func TestAxiom5UnfinishedStartNotViolation(t *testing.T) {
	l := eventlog.New()
	l.MustAppend(eventlog.Event{Time: 1, Type: eventlog.TaskStarted, Worker: "w1", Task: "t1"})
	rep := CheckAxiom5(l)
	if !rep.Satisfied() {
		t.Fatalf("in-flight work flagged: %v", rep.Violations)
	}
	if rep.Checked != 1 {
		t.Fatalf("checked = %d", rep.Checked)
	}
}

func TestCheckAllRunsEverything(t *testing.T) {
	s := twinStore(t)
	log := offerLog(map[string][]string{"w1": {"t1"}, "w2": {"t1"}})
	reps := CheckAll(s, log, DefaultConfig())
	if len(reps) != 5 {
		t.Fatalf("reports = %d", len(reps))
	}
	for i, rep := range reps {
		if int(rep.Axiom) != i+1 {
			t.Errorf("report %d has axiom %v", i, rep.Axiom)
		}
	}
}

func TestReportViolationRate(t *testing.T) {
	r := Report{Checked: 4, Violations: make([]Violation, 1)}
	if r.ViolationRate() != 0.25 {
		t.Fatalf("rate = %v", r.ViolationRate())
	}
	if (&Report{}).ViolationRate() != 0 {
		t.Fatal("empty rate should be 0")
	}
}

func TestIncomeGini(t *testing.T) {
	s := twinStore(t)
	for i, paid := range []float64{3, 1} {
		c := &model.Contribution{
			ID: model.ContributionID(fmt.Sprintf("c%d", i)), Task: "t1",
			Worker: model.WorkerID(fmt.Sprintf("w%d", i+1)),
			Text:   "x", Quality: 0.5, Paid: paid,
		}
		if err := s.PutContribution(c); err != nil {
			t.Fatal(err)
		}
	}
	withIdle := IncomeGini(s, true) // w3 has zero income
	withoutIdle := IncomeGini(s, false)
	if withIdle <= withoutIdle {
		t.Fatalf("idle workers should increase inequality: %v vs %v", withIdle, withoutIdle)
	}
}

// The local gini must agree with stats.Gini on all inputs.
func TestGiniMatchesStatsPackage(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, len(raw))
		for i, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				x = 1
			}
			xs[i] = math.Mod(math.Abs(x), 1e6)
		}
		return math.Abs(gini(xs)-stats.Gini(xs)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// idSet.jaccard must agree with the reference jaccardIDs on random sets.
func TestIDSetJaccardMatchesReference(t *testing.T) {
	f := func(a, b []string) bool {
		as := make([]model.TaskID, len(a))
		for i, x := range a {
			as[i] = model.TaskID(x)
		}
		bs := make([]model.TaskID, len(b))
		for i, x := range b {
			bs[i] = model.TaskID(x)
		}
		want := jaccardIDs(as, bs)
		got := newIDSet(as).jaccard(newIDSet(bs))
		return math.Abs(want-got) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestAxiomStrings(t *testing.T) {
	for a := Axiom1WorkerAssignment; a <= Axiom5NoInterruption; a++ {
		if !strings.Contains(a.String(), "Axiom") {
			t.Errorf("axiom %d string = %q", a, a.String())
		}
	}
}
