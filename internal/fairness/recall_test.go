package fairness

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/eventlog"
	"repro/internal/model"
	"repro/internal/stats"
	"repro/internal/store"
)

// recallPopulation builds a jittered clustered platform: workers and tasks
// come in clusters around shared skill cores with per-entity perturbations
// (an extra skill, a nudged acceptance ratio), offers are biased so twins
// see different tasks, and contributions jitter a per-task template text
// and pay. The jitter matters: violating pairs sit near the similarity
// thresholds rather than being byte-identical, which is exactly where LSH
// recall is earned rather than trivial.
func recallPopulation(tb testing.TB, seed uint64, workers, tasks int) (*store.Store, *eventlog.Log) {
	tb.Helper()
	skillNames := make([]string, 30)
	for i := range skillNames {
		skillNames[i] = fmt.Sprintf("s%02d", i)
	}
	u := model.MustUniverse(skillNames...)
	st := store.NewSharded(u, 4)
	rng := stats.NewRNG(seed)
	for _, r := range []model.RequesterID{"r1", "r2", "r3"} {
		if err := st.PutRequester(&model.Requester{ID: r}); err != nil {
			tb.Fatal(err)
		}
	}

	// Cluster skill cores: 6 skills each, disjoint enough that clusters
	// rarely collide above threshold.
	const clusters = 8
	cores := make([][]string, clusters)
	for c := range cores {
		perm := rng.Perm(len(skillNames))
		for _, k := range perm[:6] {
			cores[c] = append(cores[c], skillNames[k])
		}
	}
	clusterSkills := func(c int) model.SkillVector {
		names := append([]string(nil), cores[c]...)
		if rng.Bool(0.3) {
			names = append(names, skillNames[rng.Intn(len(skillNames))])
		}
		return u.MustVector(names...)
	}

	countries := []string{"jp", "fr", "br"}
	for i := 0; i < workers; i++ {
		c := i % clusters
		w := &model.Worker{
			ID:       model.WorkerID(fmt.Sprintf("w%05d", i)),
			Declared: model.Attributes{"country": model.Str(countries[c%len(countries)])},
			Computed: model.Attributes{
				// Same cluster-level base, jittered well inside the numeric
				// tolerance so attr similarity stays above threshold.
				model.AttrAcceptanceRatio: model.Num(0.5 + 0.04*float64(c%2) + 0.002*rng.Float64()),
			},
			Skills: clusterSkills(c),
		}
		if err := st.PutWorker(w); err != nil {
			tb.Fatal(err)
		}
	}
	rewards := []float64{1.0, 1.01, 3.0}
	for i := 0; i < tasks; i++ {
		c := i % clusters
		t := &model.Task{
			ID:        model.TaskID(fmt.Sprintf("t%05d", i)),
			Requester: []model.RequesterID{"r1", "r2", "r3"}[rng.Intn(3)],
			Skills:    clusterSkills(c),
			Reward:    rewards[rng.Intn(len(rewards))],
		}
		if err := st.PutTask(t); err != nil {
			tb.Fatal(err)
		}
	}

	// Offers biased by worker parity: even-index workers see most of their
	// cluster's tasks, odd-index workers a sliver — twin pairs then differ
	// in offer sets (Axiom 1) and similar tasks differ in audience
	// (Axiom 2).
	log := eventlog.New()
	for i := 0; i < workers; i++ {
		wid := model.WorkerID(fmt.Sprintf("w%05d", i))
		for j := i % clusters; j < tasks; j += clusters {
			if i%2 == 0 || rng.Bool(0.15) {
				log.MustAppend(eventlog.Event{
					Type: eventlog.TaskOffered, Worker: wid,
					Task: model.TaskID(fmt.Sprintf("t%05d", j)),
				})
			}
		}
	}

	// Contributions: a per-task template with word-level jitter, submitted
	// by several distinct workers at diverging pay (Axiom 3).
	fillers := []string{"carefully", "quickly", "reliably", "boldly"}
	cn := 0
	for i := 0; i < tasks; i++ {
		tid := model.TaskID(fmt.Sprintf("t%05d", i))
		template := fmt.Sprintf("the answer for task %d is computed %%s from the shared corpus of cluster %d", i, i%clusters)
		for k := 0; k < 3; k++ {
			cn++
			c := &model.Contribution{
				ID:     model.ContributionID(fmt.Sprintf("c%05d", cn)),
				Task:   tid,
				Worker: model.WorkerID(fmt.Sprintf("w%05d", (i+k*7)%workers)),
				Text:   fmt.Sprintf(template, fillers[rng.Intn(len(fillers))]),
				Paid:   []float64{0.5, 0.5, 2.0}[rng.Intn(3)],
			}
			if err := st.PutContribution(c); err != nil {
				tb.Fatal(err)
			}
		}
	}
	return st, log
}

// violationKeys flattens a report set to axiom-tagged subject keys.
func violationKeys(reports []*Report) map[string]bool {
	keys := make(map[string]bool)
	for _, r := range reports {
		for _, v := range r.Violations {
			keys[fmt.Sprintf("%d|%s", v.Axiom, strings.Join(v.Subjects, "|"))] = true
		}
	}
	return keys
}

// TestLSHRecallBound is the acceptance-criterion recall test: across five
// seeds at each of two population scales, the LSH backend must report at
// least 98% of the violating pairs the exact backend reports (aggregated
// per scale), and must never report a violation the exact backend does not
// — LSH prunes candidates, it cannot invent similarity.
func TestLSHRecallBound(t *testing.T) {
	for _, scale := range []struct{ workers, tasks int }{
		{120, 48},
		{400, 120},
	} {
		scale := scale
		t.Run(fmt.Sprintf("workers=%d", scale.workers), func(t *testing.T) {
			var exactTotal, found int
			for _, seed := range []uint64{1, 2, 3, 4, 5} {
				st, log := recallPopulation(t, seed, scale.workers, scale.tasks)
				exactCfg := DefaultConfig()
				lshCfg := DefaultConfig()
				lshCfg.CandidateIndex = CandidateLSH
				lshCfg.LSHSeed = seed * 7919

				exact := violationKeys(CheckAll(st, log, exactCfg))
				lsh := violationKeys(CheckAll(st, log, lshCfg))
				if len(exact) == 0 {
					t.Fatalf("seed %d: exact backend found no violations — population generator is broken", seed)
				}
				for k := range lsh {
					if !exact[k] {
						t.Errorf("seed %d: LSH reported %s, exact did not", seed, k)
					}
				}
				exactTotal += len(exact)
				for k := range exact {
					if lsh[k] {
						found++
					}
				}
			}
			recall := float64(found) / float64(exactTotal)
			t.Logf("recall %d/%d = %.4f", found, exactTotal, recall)
			if recall < 0.98 {
				t.Fatalf("LSH recall %.4f below 0.98 bound (%d of %d exact violations)",
					recall, found, exactTotal)
			}
		})
	}
}
