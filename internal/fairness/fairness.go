// Package fairness implements the paper's central contribution as
// executable code: checkers for fairness Axioms 1–5 (§3.2.1) that audit a
// platform trace (a store.Store state plus an eventlog.Log history) and
// report every violation, together with the aggregate fairness indices the
// experiments report.
//
// Each axiom is a parameterised predicate — the paper makes the similarity
// notions explicitly platform-dependent — so every checker takes a Config
// carrying thresholds and measures, with defaults chosen per the paper's
// own suggestions (cosine similarity for skills, n-grams/DCG for
// contributions, threshold similarity for attributes).
package fairness

import (
	"fmt"
	"sort"

	"repro/internal/eventlog"
	"repro/internal/model"
	"repro/internal/similarity"
	"repro/internal/store"
)

// Axiom identifies one of the paper's fairness axioms.
type Axiom int

// The five fairness axioms of §3.2.1.
const (
	Axiom1WorkerAssignment    Axiom = 1 // worker fairness in task assignment
	Axiom2RequesterAssignment Axiom = 2 // requester fairness in task assignment
	Axiom3Compensation        Axiom = 3 // fairness in worker compensation
	Axiom4MaliciousDetection  Axiom = 4 // requester fairness in task completion
	Axiom5NoInterruption      Axiom = 5 // worker fairness in task completion
)

// String renders the axiom name.
func (a Axiom) String() string {
	switch a {
	case Axiom1WorkerAssignment:
		return "Axiom 1 (worker fairness in task assignment)"
	case Axiom2RequesterAssignment:
		return "Axiom 2 (requester fairness in task assignment)"
	case Axiom3Compensation:
		return "Axiom 3 (fairness in worker compensation)"
	case Axiom4MaliciousDetection:
		return "Axiom 4 (requester fairness in task completion)"
	case Axiom5NoInterruption:
		return "Axiom 5 (worker fairness in task completion)"
	default:
		return fmt.Sprintf("Axiom %d", int(a))
	}
}

// Violation is one audited failure of an axiom.
type Violation struct {
	Axiom Axiom
	// Subjects are the entity ids involved (two workers for Axiom 1, two
	// tasks for Axiom 2, two contributions for Axiom 3, one worker for
	// Axioms 4/5).
	Subjects []string
	// Detail is a human-readable explanation with the measured quantities.
	Detail string
	// Severity in (0,1] scales with how blatant the violation is (e.g. the
	// pay gap between similar contributions, or the access-overlap deficit).
	Severity float64
}

// String renders the violation for reports.
func (v Violation) String() string {
	return fmt.Sprintf("%s: %v: %s (severity %.2f)", v.Axiom, v.Subjects, v.Detail, v.Severity)
}

// Config parameterises all checkers.
//
// Zero-value defaulting: every float threshold/tolerance field treats 0 as
// "use the documented default". An explicit zero is expressed with any
// negative value — e.g. AccessThreshold: -1 demands no overlap at all and
// PayTolerance: -1 demands exactly equal pay — so callers are never
// silently upgraded from a deliberate 0 to the default.
type Config struct {
	// SkillMeasure compares skill vectors (Axioms 1 and 2).
	// Default: cosine.
	SkillMeasure similarity.VectorMeasure
	// SkillThreshold is the similarity at/above which two skill vectors
	// are "similar" (default 0.9).
	SkillThreshold float64
	// AttrPolicy compares declared/computed attribute sets (Axiom 1).
	// Default: numeric tolerance 0.1.
	AttrPolicy *similarity.AttrPolicy
	// AttrThreshold is the attribute-set similarity at/above which two
	// workers are "similar" (default 0.9).
	AttrThreshold float64
	// AccessThreshold is the minimum Jaccard overlap of two similar
	// workers' offer sets (Axiom 1) or two similar tasks' audiences
	// (Axiom 2) before a violation is reported (default 1.0: identical
	// access, the paper's literal reading).
	AccessThreshold float64
	// RewardTolerance is the relative reward difference within which two
	// tasks "offer comparable rewards" (Axiom 2; default 0.1).
	RewardTolerance float64
	// ContributionThreshold is the similarity at/above which two
	// contributions are "similar" (Axiom 3; default 0.8).
	ContributionThreshold float64
	// PayTolerance is the relative pay difference tolerated between
	// similar contributions (Axiom 3; default 0.01).
	PayTolerance float64
	// Exhaustive forces the O(n²) pair scan instead of the index-pruned
	// candidate generation (the E7 ablation switch). It overrides
	// CandidateIndex and Candidates.
	Exhaustive bool
	// CandidateIndex selects the candidate-generation backend for the
	// Axiom 1–3 checkers: CandidateExact (the default; inverted token
	// index, full recall, byte-identical reports to the inline scans it
	// replaced) or CandidateLSH (MinHash/LSH banding, sub-quadratic, with
	// band/row parameters derived from the configured thresholds for
	// recall ≥ ~0.98 on violating pairs). Ignored when Exhaustive is set.
	CandidateIndex string
	// LSHSeed seeds the MinHash hash families when CandidateIndex is
	// CandidateLSH. The same seed and config give byte-identical candidate
	// sets — and therefore byte-identical reports — run to run.
	LSHSeed uint64
	// Candidates, when non-nil, supplies candidate pairs directly instead
	// of a transient per-call index build — internal/audit injects its
	// incrementally maintained provider here. The provider must be built
	// from this config's Plan() so its candidate sets match what the
	// checkers would build themselves.
	Candidates CandidateProvider
	// Memo, when non-nil, memoizes the pairwise similarity scores of Axioms
	// 1–3 across audit passes (internal/audit supplies a revision-keyed
	// cache). Implementations must be safe for concurrent use. With a memo
	// attached, Axiom 1 computes all three similarity scores per pair up
	// front instead of short-circuiting; reported violations are identical.
	Memo PairMemo
	// RecordCheckedPairs makes the Axiom 1/2 checkers list every candidate
	// pair they examine in Report.CheckedPairs. Incremental auditors
	// (internal/audit) use the lists to maintain an exact candidate-pair
	// census across delta passes, so their reported Checked counts stay
	// equal to a full scan's. The census is of *candidate* pairs, not all
	// pairs: when pruning is active (CandidateLSH) a pair appears iff the
	// index currently proposes it, so the census — like Checked — shrinks
	// with the pruned candidate set, and delta and full passes still agree
	// because a pair's candidacy depends only on its two endpoints.
	RecordCheckedPairs bool
}

// WorkerPairScores bundles the three similarity scores Axiom 1 compares for
// a worker pair. All three measures are symmetric, so the scores are valid
// for either pair orientation.
type WorkerPairScores struct {
	Skill    float64 // SkillMeasure over skill vectors
	Declared float64 // AttrPolicy over declared attributes
	Computed float64 // AttrPolicy over computed attributes
}

// PairMemo caches pairwise similarity scores across audit passes. Keys are
// entity-id pairs; implementations decide validity (internal/audit keys by
// store revision, so a mutated entity misses). compute is invoked on a miss
// and must be idempotent.
type PairMemo interface {
	// WorkerPair returns the Axiom 1 scores for a worker pair.
	WorkerPair(a, b model.WorkerID, compute func() WorkerPairScores) WorkerPairScores
	// TaskPair returns the Axiom 2 skill similarity for a task pair.
	TaskPair(a, b model.TaskID, compute func() float64) float64
	// ContribPair returns the Axiom 3 contribution similarity for a pair.
	ContribPair(a, b model.ContributionID, compute func() float64) float64
}

// DefaultConfig returns the configuration used throughout the experiments.
func DefaultConfig() Config {
	ap := similarity.TolerantAttrPolicy(0.1)
	return Config{
		SkillMeasure:          similarity.MeasureCosine,
		SkillThreshold:        0.9,
		AttrPolicy:            &ap,
		AttrThreshold:         0.9,
		AccessThreshold:       1.0,
		RewardTolerance:       0.1,
		ContributionThreshold: 0.8,
		PayTolerance:          0.01,
	}
}

func (c *Config) skillMeasure() similarity.VectorMeasure {
	if c.SkillMeasure.Func == nil {
		return similarity.MeasureCosine
	}
	return c.SkillMeasure
}

func (c *Config) attrPolicy() similarity.AttrPolicy {
	if c.AttrPolicy == nil {
		return similarity.TolerantAttrPolicy(0.1)
	}
	return *c.AttrPolicy
}

// orDefault maps the zero value to the documented default and any negative
// value to an explicit zero (see the Config doc), so a deliberate 0 is
// expressible without colliding with Go's zero-value defaulting.
func orDefault(v, def float64) float64 {
	if v == 0 {
		return def
	}
	if v < 0 {
		return 0
	}
	return v
}

// Report is the outcome of auditing one axiom over a trace.
type Report struct {
	Axiom Axiom
	// Checked is the number of candidate units examined (pairs for Axioms
	// 1–3, workers/starts for 4–5). Under pruned candidate generation
	// (Config.CandidateIndex = CandidateLSH) this counts only the pairs
	// the index proposed — a deterministic subset of the exact backend's
	// count, not the number of all entity pairs.
	Checked int
	// Violations lists every failure found, deterministically ordered.
	Violations []Violation
	// CheckedPairs lists the subject-id pair of every candidate examined,
	// in examination order. Populated by the Axiom 1/2 checkers only when
	// Config.RecordCheckedPairs is set; nil otherwise.
	CheckedPairs [][2]string
}

// ViolationRate returns violations per checked unit (0 if nothing checked).
func (r *Report) ViolationRate() float64 {
	if r.Checked == 0 {
		return 0
	}
	return float64(len(r.Violations)) / float64(r.Checked)
}

// Satisfied reports whether the axiom held over the whole trace.
func (r *Report) Satisfied() bool { return len(r.Violations) == 0 }

// String renders a one-line summary.
func (r *Report) String() string {
	return fmt.Sprintf("%s: checked=%d violations=%d rate=%.4f",
		r.Axiom, r.Checked, len(r.Violations), r.ViolationRate())
}

// jaccardIDs computes the Jaccard overlap of two id sets.
func jaccardIDs[T ~string](a, b []T) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	set := make(map[T]bool, len(a))
	for _, x := range a {
		set[x] = true
	}
	shared := 0
	setB := make(map[T]bool, len(b))
	for _, x := range b {
		if setB[x] {
			continue
		}
		setB[x] = true
		if set[x] {
			shared++
		}
	}
	union := len(set) + len(setB) - shared
	if union == 0 {
		return 1
	}
	return float64(shared) / float64(union)
}

// idSet is a precomputed id set with an order-independent fingerprint, so
// the checkers can compare many offer sets pairwise without rebuilding maps
// per pair and can shortcut the (common) identical-sets case.
type idSet[T ~string] struct {
	set  map[T]bool
	hash uint64
}

// add inserts id, reporting whether the set changed. The XOR-combined
// per-element FNV-1a fingerprint is order- and duplicate-independent, so
// incremental insertion and batch construction agree.
func (s *idSet[T]) add(id T) bool {
	if s.set == nil {
		s.set = make(map[T]bool)
	}
	if s.set[id] {
		return false
	}
	s.set[id] = true
	s.hash ^= fnv64a(string(id))
	return true
}

// size returns the number of distinct ids in the set.
func (s idSet[T]) size() int { return len(s.set) }

func fnv64a(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

func newIDSet[T ~string](ids []T) idSet[T] {
	s := idSet[T]{set: make(map[T]bool, len(ids))}
	for _, id := range ids {
		s.add(id)
	}
	return s
}

// jaccard computes the overlap of two precomputed sets with an equality
// fast path.
func (a idSet[T]) jaccard(b idSet[T]) float64 {
	if len(a.set) == 0 && len(b.set) == 0 {
		return 1
	}
	if a.hash == b.hash && len(a.set) == len(b.set) {
		return 1 // identical with overwhelming probability; severity-free path
	}
	small, big := a.set, b.set
	if len(big) < len(small) {
		small, big = big, small
	}
	shared := 0
	for id := range small {
		if big[id] {
			shared++
		}
	}
	union := len(a.set) + len(b.set) - shared
	if union == 0 {
		return 1
	}
	return float64(shared) / float64(union)
}

// AccessIndex is the offer/audience evidence Axioms 1 and 2 audit: for
// every worker the set of tasks made visible to them, and for every task
// the set of workers it was shown to. The index is maintained incrementally
// — Observe folds one trace event in — so a long-lived audit engine never
// replays the whole log, and repeated offers of the same task to the same
// worker are deduplicated exactly like the Jaccard computation requires.
type AccessIndex struct {
	offers   map[model.WorkerID]*idSet[model.TaskID]
	audience map[model.TaskID]*idSet[model.WorkerID]
}

// NewAccessIndex returns an empty index.
func NewAccessIndex() *AccessIndex {
	return &AccessIndex{
		offers:   make(map[model.WorkerID]*idSet[model.TaskID]),
		audience: make(map[model.TaskID]*idSet[model.WorkerID]),
	}
}

// AccessIndexFromLog builds the index from a complete trace.
func AccessIndexFromLog(log *eventlog.Log) *AccessIndex {
	ix := NewAccessIndex()
	for _, e := range log.ByType(eventlog.TaskOffered) {
		ix.Observe(e)
	}
	return ix
}

// Observe folds one event into the index. It reports whether the event
// changed any access set — false for non-offer events and for repeated
// offers of a task already visible to the worker — which is exactly the
// signal an incremental auditor needs to mark the endpoints dirty.
func (ix *AccessIndex) Observe(e eventlog.Event) bool {
	if e.Type != eventlog.TaskOffered {
		return false
	}
	o := ix.offers[e.Worker]
	if o == nil {
		o = &idSet[model.TaskID]{}
		ix.offers[e.Worker] = o
	}
	if !o.add(e.Task) {
		return false
	}
	a := ix.audience[e.Task]
	if a == nil {
		a = &idSet[model.WorkerID]{}
		ix.audience[e.Task] = a
	}
	a.add(e.Worker)
	return true
}

// Offers exports the deduplicated offer sets — each worker's visible task
// ids, sorted — for checkpoint serialisation. RestoreOffer rebuilds an
// equal index (including the per-set fingerprints) from the lists.
func (ix *AccessIndex) Offers() map[model.WorkerID][]model.TaskID {
	out := make(map[model.WorkerID][]model.TaskID, len(ix.offers))
	for w, s := range ix.offers {
		ids := make([]model.TaskID, 0, len(s.set))
		for t := range s.set {
			ids = append(ids, t)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		out[w] = ids
	}
	return out
}

// RestoreOffer re-inserts one (worker, task) visibility edge — the inverse
// of Offers. Equivalent to observing a TaskOffered event.
func (ix *AccessIndex) RestoreOffer(w model.WorkerID, t model.TaskID) {
	ix.Observe(eventlog.Event{Type: eventlog.TaskOffered, Worker: w, Task: t})
}

// offerSet returns the worker's deduplicated offer set (zero set if none).
func (ix *AccessIndex) offerSet(id model.WorkerID) idSet[model.TaskID] {
	if s, ok := ix.offers[id]; ok {
		return *s
	}
	return idSet[model.TaskID]{}
}

// audienceSet returns the task's deduplicated audience (zero set if none).
func (ix *AccessIndex) audienceSet(id model.TaskID) idSet[model.WorkerID] {
	if s, ok := ix.audience[id]; ok {
		return *s
	}
	return idSet[model.WorkerID]{}
}

// SortViolations orders violations by their subject ids — the deterministic
// report order every checker uses. Exposed for consumers (internal/audit)
// that merge incrementally maintained violation sets into reports.
func SortViolations(vs []Violation) { sortViolations(vs) }

// ViolationLess is the strict ordering SortViolations applies, exposed so
// incremental consumers can merge already-sorted violation runs without
// re-sorting.
func ViolationLess(a, b Violation) bool {
	for k := 0; k < len(a.Subjects) && k < len(b.Subjects); k++ {
		if a.Subjects[k] != b.Subjects[k] {
			return a.Subjects[k] < b.Subjects[k]
		}
	}
	return len(a.Subjects) < len(b.Subjects)
}

func sortViolations(vs []Violation) {
	sort.Slice(vs, func(i, j int) bool { return ViolationLess(vs[i], vs[j]) })
}

// CheckAll runs every axiom checker over the trace and returns the reports
// in axiom order. The detection component of Axiom 4 is taken as satisfied
// when the log shows WorkerFlagged events for workers the caller knows to
// be malicious; see CheckAxiom4 for the contract.
func CheckAll(st *store.Store, log *eventlog.Log, cfg Config) []*Report {
	return []*Report{
		CheckAxiom1(st, log, cfg),
		CheckAxiom2(st, log, cfg),
		CheckAxiom3(st, cfg),
		CheckAxiom4(st, log),
		CheckAxiom5(log),
	}
}
