// Package fairness implements the paper's central contribution as
// executable code: checkers for fairness Axioms 1–5 (§3.2.1) that audit a
// platform trace (a store.Store state plus an eventlog.Log history) and
// report every violation, together with the aggregate fairness indices the
// experiments report.
//
// Each axiom is a parameterised predicate — the paper makes the similarity
// notions explicitly platform-dependent — so every checker takes a Config
// carrying thresholds and measures, with defaults chosen per the paper's
// own suggestions (cosine similarity for skills, n-grams/DCG for
// contributions, threshold similarity for attributes).
package fairness

import (
	"fmt"
	"sort"

	"repro/internal/eventlog"
	"repro/internal/model"
	"repro/internal/similarity"
	"repro/internal/store"
)

// Axiom identifies one of the paper's fairness axioms.
type Axiom int

// The five fairness axioms of §3.2.1.
const (
	Axiom1WorkerAssignment    Axiom = 1 // worker fairness in task assignment
	Axiom2RequesterAssignment Axiom = 2 // requester fairness in task assignment
	Axiom3Compensation        Axiom = 3 // fairness in worker compensation
	Axiom4MaliciousDetection  Axiom = 4 // requester fairness in task completion
	Axiom5NoInterruption      Axiom = 5 // worker fairness in task completion
)

// String renders the axiom name.
func (a Axiom) String() string {
	switch a {
	case Axiom1WorkerAssignment:
		return "Axiom 1 (worker fairness in task assignment)"
	case Axiom2RequesterAssignment:
		return "Axiom 2 (requester fairness in task assignment)"
	case Axiom3Compensation:
		return "Axiom 3 (fairness in worker compensation)"
	case Axiom4MaliciousDetection:
		return "Axiom 4 (requester fairness in task completion)"
	case Axiom5NoInterruption:
		return "Axiom 5 (worker fairness in task completion)"
	default:
		return fmt.Sprintf("Axiom %d", int(a))
	}
}

// Violation is one audited failure of an axiom.
type Violation struct {
	Axiom Axiom
	// Subjects are the entity ids involved (two workers for Axiom 1, two
	// tasks for Axiom 2, two contributions for Axiom 3, one worker for
	// Axioms 4/5).
	Subjects []string
	// Detail is a human-readable explanation with the measured quantities.
	Detail string
	// Severity in (0,1] scales with how blatant the violation is (e.g. the
	// pay gap between similar contributions, or the access-overlap deficit).
	Severity float64
}

// String renders the violation for reports.
func (v Violation) String() string {
	return fmt.Sprintf("%s: %v: %s (severity %.2f)", v.Axiom, v.Subjects, v.Detail, v.Severity)
}

// Config parameterises all checkers.
type Config struct {
	// SkillMeasure compares skill vectors (Axioms 1 and 2).
	// Default: cosine.
	SkillMeasure similarity.VectorMeasure
	// SkillThreshold is the similarity at/above which two skill vectors
	// are "similar" (default 0.9).
	SkillThreshold float64
	// AttrPolicy compares declared/computed attribute sets (Axiom 1).
	// Default: numeric tolerance 0.1.
	AttrPolicy *similarity.AttrPolicy
	// AttrThreshold is the attribute-set similarity at/above which two
	// workers are "similar" (default 0.9).
	AttrThreshold float64
	// AccessThreshold is the minimum Jaccard overlap of two similar
	// workers' offer sets (Axiom 1) or two similar tasks' audiences
	// (Axiom 2) before a violation is reported (default 1.0: identical
	// access, the paper's literal reading).
	AccessThreshold float64
	// RewardTolerance is the relative reward difference within which two
	// tasks "offer comparable rewards" (Axiom 2; default 0.1).
	RewardTolerance float64
	// ContributionThreshold is the similarity at/above which two
	// contributions are "similar" (Axiom 3; default 0.8).
	ContributionThreshold float64
	// PayTolerance is the relative pay difference tolerated between
	// similar contributions (Axiom 3; default 0.01).
	PayTolerance float64
	// Exhaustive forces the O(n²) pair scan instead of the index-pruned
	// candidate generation (the E7 ablation switch).
	Exhaustive bool
}

// DefaultConfig returns the configuration used throughout the experiments.
func DefaultConfig() Config {
	ap := similarity.TolerantAttrPolicy(0.1)
	return Config{
		SkillMeasure:          similarity.MeasureCosine,
		SkillThreshold:        0.9,
		AttrPolicy:            &ap,
		AttrThreshold:         0.9,
		AccessThreshold:       1.0,
		RewardTolerance:       0.1,
		ContributionThreshold: 0.8,
		PayTolerance:          0.01,
	}
}

func (c *Config) skillMeasure() similarity.VectorMeasure {
	if c.SkillMeasure.Func == nil {
		return similarity.MeasureCosine
	}
	return c.SkillMeasure
}

func (c *Config) attrPolicy() similarity.AttrPolicy {
	if c.AttrPolicy == nil {
		return similarity.TolerantAttrPolicy(0.1)
	}
	return *c.AttrPolicy
}

func orDefault(v, def float64) float64 {
	if v == 0 {
		return def
	}
	return v
}

// Report is the outcome of auditing one axiom over a trace.
type Report struct {
	Axiom Axiom
	// Checked is the number of candidate units examined (pairs for Axioms
	// 1–3, workers/starts for 4–5).
	Checked int
	// Violations lists every failure found, deterministically ordered.
	Violations []Violation
}

// ViolationRate returns violations per checked unit (0 if nothing checked).
func (r *Report) ViolationRate() float64 {
	if r.Checked == 0 {
		return 0
	}
	return float64(len(r.Violations)) / float64(r.Checked)
}

// Satisfied reports whether the axiom held over the whole trace.
func (r *Report) Satisfied() bool { return len(r.Violations) == 0 }

// String renders a one-line summary.
func (r *Report) String() string {
	return fmt.Sprintf("%s: checked=%d violations=%d rate=%.4f",
		r.Axiom, r.Checked, len(r.Violations), r.ViolationRate())
}

// jaccardIDs computes the Jaccard overlap of two id sets.
func jaccardIDs[T ~string](a, b []T) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	set := make(map[T]bool, len(a))
	for _, x := range a {
		set[x] = true
	}
	shared := 0
	setB := make(map[T]bool, len(b))
	for _, x := range b {
		if setB[x] {
			continue
		}
		setB[x] = true
		if set[x] {
			shared++
		}
	}
	union := len(set) + len(setB) - shared
	if union == 0 {
		return 1
	}
	return float64(shared) / float64(union)
}

// idSet is a precomputed id set with an order-independent fingerprint, so
// the checkers can compare many offer sets pairwise without rebuilding maps
// per pair and can shortcut the (common) identical-sets case.
type idSet[T ~string] struct {
	set  map[T]bool
	hash uint64
}

func newIDSet[T ~string](ids []T) idSet[T] {
	s := idSet[T]{set: make(map[T]bool, len(ids))}
	for _, id := range ids {
		if s.set[id] {
			continue
		}
		s.set[id] = true
		// FNV-1a per element, XOR-combined: order- and
		// duplicate-independent.
		var h uint64 = 14695981039346656037
		for i := 0; i < len(id); i++ {
			h ^= uint64(id[i])
			h *= 1099511628211
		}
		s.hash ^= h
	}
	return s
}

// jaccard computes the overlap of two precomputed sets with an equality
// fast path.
func (a idSet[T]) jaccard(b idSet[T]) float64 {
	if len(a.set) == 0 && len(b.set) == 0 {
		return 1
	}
	if a.hash == b.hash && len(a.set) == len(b.set) {
		return 1 // identical with overwhelming probability; severity-free path
	}
	small, big := a.set, b.set
	if len(big) < len(small) {
		small, big = big, small
	}
	shared := 0
	for id := range small {
		if big[id] {
			shared++
		}
	}
	union := len(a.set) + len(b.set) - shared
	if union == 0 {
		return 1
	}
	return float64(shared) / float64(union)
}

// offersFromLog reconstructs each worker's offer set (task ids made visible
// to them) from TaskOffered events.
func offersFromLog(log *eventlog.Log) map[model.WorkerID][]model.TaskID {
	out := make(map[model.WorkerID][]model.TaskID)
	for _, e := range log.ByType(eventlog.TaskOffered) {
		out[e.Worker] = append(out[e.Worker], e.Task)
	}
	return out
}

// audienceFromLog reconstructs each task's audience (worker ids it was
// shown to) from TaskOffered events.
func audienceFromLog(log *eventlog.Log) map[model.TaskID][]model.WorkerID {
	out := make(map[model.TaskID][]model.WorkerID)
	for _, e := range log.ByType(eventlog.TaskOffered) {
		out[e.Task] = append(out[e.Task], e.Worker)
	}
	return out
}

func sortViolations(vs []Violation) {
	sort.Slice(vs, func(i, j int) bool {
		a, b := vs[i], vs[j]
		for k := 0; k < len(a.Subjects) && k < len(b.Subjects); k++ {
			if a.Subjects[k] != b.Subjects[k] {
				return a.Subjects[k] < b.Subjects[k]
			}
		}
		return len(a.Subjects) < len(b.Subjects)
	})
}

// CheckAll runs every axiom checker over the trace and returns the reports
// in axiom order. The detection component of Axiom 4 is taken as satisfied
// when the log shows WorkerFlagged events for workers the caller knows to
// be malicious; see CheckAxiom4 for the contract.
func CheckAll(st *store.Store, log *eventlog.Log, cfg Config) []*Report {
	return []*Report{
		CheckAxiom1(st, log, cfg),
		CheckAxiom2(st, log, cfg),
		CheckAxiom3(st, cfg),
		CheckAxiom4(st, log),
		CheckAxiom5(log),
	}
}
