package transparency

import (
	"strings"
	"testing"
)

func TestCompareDisjointAndShared(t *testing.T) {
	a := MustParse(`policy "alpha" {
		disclose requester.hourly_wage to workers always;
		disclose task.reward to workers always;
	}`)
	b := MustParse(`policy "beta" {
		disclose task.reward to workers always;
		disclose worker.performance to workers always;
	}`)
	cmp := Compare(a, b)
	if len(cmp.OnlyA) != 1 || cmp.OnlyA[0].Field != "hourly_wage" {
		t.Fatalf("OnlyA = %v", cmp.OnlyA)
	}
	if len(cmp.OnlyB) != 1 || cmp.OnlyB[0].Field != "performance" {
		t.Fatalf("OnlyB = %v", cmp.OnlyB)
	}
	if len(cmp.Shared) != 1 || cmp.Shared[0].Field != "reward" {
		t.Fatalf("Shared = %v", cmp.Shared)
	}
	if len(cmp.Weaker) != 0 {
		t.Fatalf("Weaker = %v", cmp.Weaker)
	}
}

func TestCompareDetectsWeakerGating(t *testing.T) {
	a := MustParse(`policy "open" {
		disclose task.reward to workers always;
	}`)
	b := MustParse(`policy "gated" {
		disclose task.reward to workers when worker.completed >= 100;
	}`)
	cmp := Compare(a, b)
	if len(cmp.Weaker) != 1 || cmp.Weaker[0].WeakerSide != "gated" {
		t.Fatalf("Weaker = %v", cmp.Weaker)
	}
	out := cmp.String()
	if !strings.Contains(out, "weaker on task.reward") {
		t.Errorf("rendering:\n%s", out)
	}
}

func TestCompareUsesLeastRestrictiveRule(t *testing.T) {
	// A policy with both a gated and an open rule for the same field
	// counts as open.
	a := MustParse(`policy "a" {
		disclose task.reward to workers when worker.completed >= 100;
		disclose task.reward to workers always;
	}`)
	b := MustParse(`policy "b" {
		disclose task.reward to workers always;
	}`)
	cmp := Compare(a, b)
	if len(cmp.Weaker) != 0 {
		t.Fatalf("Weaker = %v", cmp.Weaker)
	}
}

func TestTransparencyScoreMonotone(t *testing.T) {
	cat := StandardCatalogue()
	empty := &Policy{Name: "empty"}
	one := MustParse(`policy "one" { disclose task.reward to workers always; }`)
	gatedOne := MustParse(`policy "gated" { disclose task.reward to workers when worker.completed >= 1; }`)

	sEmpty := TransparencyScore(empty, cat)
	sGated := TransparencyScore(gatedOne, cat)
	sOne := TransparencyScore(one, cat)
	if !(sEmpty < sGated && sGated < sOne) {
		t.Fatalf("scores not ordered: %v %v %v", sEmpty, sGated, sOne)
	}
	if sEmpty != 0 {
		t.Fatalf("empty score = %v", sEmpty)
	}
}

func TestTransparencyScoreFullPolicy(t *testing.T) {
	cat := StandardCatalogue()
	full := &Policy{Name: "full"}
	for _, e := range cat.Entries() {
		full.Rules = append(full.Rules, &Rule{
			Field: e.Ref, To: AudienceWorkers, On: TriggerAlways,
		})
	}
	if got := TransparencyScore(full, cat); got != 1 {
		t.Fatalf("full score = %v, want 1", got)
	}
}

func TestTransparencyScoreIgnoresRequesterOnlyRules(t *testing.T) {
	cat := StandardCatalogue()
	pol := MustParse(`policy "x" { disclose worker.performance to requesters always; }`)
	if got := TransparencyScore(pol, cat); got != 0 {
		t.Fatalf("requester-only score = %v, want 0 (workers see nothing)", got)
	}
}

func TestPolicyFieldsAndRulesFor(t *testing.T) {
	pol := MustParse(`policy "x" {
		disclose task.reward to workers always;
		disclose task.reward to requesters always;
		disclose platform.requester_rating to public always;
	}`)
	if got := len(pol.Fields()); got != 2 {
		t.Fatalf("fields = %d", got)
	}
	if got := len(pol.RulesFor(AudienceWorkers)); got != 2 { // worker rule + public rule
		t.Fatalf("worker rules = %d", got)
	}
	if got := len(pol.RulesFor(AudienceRequesters)); got != 2 {
		t.Fatalf("requester rules = %d", got)
	}
}
