package transparency

import (
	"errors"
	"testing"
)

func TestEvaluateUnconditional(t *testing.T) {
	pol := MustParse(`policy "x" {
		disclose requester.hourly_wage to workers always;
		disclose worker.performance to requesters always;
	}`)
	cat := StandardCatalogue()
	ctx := NewContext().SetNum(SubjectRequester, "hourly_wage", 12)
	ds, err := pol.Evaluate(cat, ctx, AudienceWorkers, TriggerTaskView)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 1 {
		t.Fatalf("disclosures = %v", ds)
	}
	d := ds[0]
	if d.Field.Field != "hourly_wage" || !d.Bound || d.Value.Num != 12 {
		t.Fatalf("disclosure = %+v", d)
	}
}

func TestEvaluateTriggerFiltering(t *testing.T) {
	pol := MustParse(`policy "x" {
		disclose task.rejection_criteria to workers on rejection;
	}`)
	cat := StandardCatalogue()
	ctx := NewContext()
	ds, err := pol.Evaluate(cat, ctx, AudienceWorkers, TriggerTaskView)
	if err != nil || len(ds) != 0 {
		t.Fatalf("wrong-trigger disclosures = %v, %v", ds, err)
	}
	ds, err = pol.Evaluate(cat, ctx, AudienceWorkers, TriggerRejection)
	if err != nil || len(ds) != 1 {
		t.Fatalf("matching-trigger disclosures = %v, %v", ds, err)
	}
}

func TestEvaluatePublicVisibleToAll(t *testing.T) {
	pol := MustParse(`policy "x" {
		disclose platform.requester_rating to public always;
	}`)
	cat := StandardCatalogue()
	for _, aud := range []Audience{AudienceWorkers, AudienceRequesters} {
		ds, err := pol.Evaluate(cat, NewContext(), aud, TriggerTaskView)
		if err != nil || len(ds) != 1 {
			t.Fatalf("public rule for %s = %v, %v", aud, ds, err)
		}
	}
}

func TestEvaluateConditions(t *testing.T) {
	pol := MustParse(`policy "x" {
		disclose worker.acceptance_ratio to workers when worker.completed >= 10;
	}`)
	cat := StandardCatalogue()
	low := NewContext().SetNum(SubjectWorker, "completed", 5)
	ds, err := pol.Evaluate(cat, low, AudienceWorkers, TriggerTaskView)
	if err != nil || len(ds) != 0 {
		t.Fatalf("unmet condition fired: %v, %v", ds, err)
	}
	high := NewContext().SetNum(SubjectWorker, "completed", 10)
	ds, err = pol.Evaluate(cat, high, AudienceWorkers, TriggerTaskView)
	if err != nil || len(ds) != 1 {
		t.Fatalf("met condition did not fire: %v, %v", ds, err)
	}
}

func TestEvaluateStringConditions(t *testing.T) {
	pol := MustParse(`policy "x" {
		disclose worker.performance to requesters when worker.consent == "granted";
	}`)
	cat := StandardCatalogue()
	yes := NewContext().SetStr(SubjectWorker, "consent", "granted")
	ds, err := pol.Evaluate(cat, yes, AudienceRequesters, TriggerTaskView)
	if err != nil || len(ds) != 1 {
		t.Fatalf("granted consent = %v, %v", ds, err)
	}
	no := NewContext().SetStr(SubjectWorker, "consent", "denied")
	ds, err = pol.Evaluate(cat, no, AudienceRequesters, TriggerTaskView)
	if err != nil || len(ds) != 0 {
		t.Fatalf("denied consent = %v, %v", ds, err)
	}
}

func TestEvaluateBooleanOperators(t *testing.T) {
	pol := MustParse(`policy "x" {
		disclose task.reward to workers when task.reward > 1 and not (worker.completed < 5);
	}`)
	cat := StandardCatalogue()
	ctx := NewContext().
		SetNum(SubjectTask, "reward", 2).
		SetNum(SubjectWorker, "completed", 5)
	ds, err := pol.Evaluate(cat, ctx, AudienceWorkers, TriggerTaskView)
	if err != nil || len(ds) != 1 {
		t.Fatalf("compound condition = %v, %v", ds, err)
	}
	ctx.SetNum(SubjectWorker, "completed", 4)
	ds, err = pol.Evaluate(cat, ctx, AudienceWorkers, TriggerTaskView)
	if err != nil || len(ds) != 0 {
		t.Fatalf("negated branch = %v, %v", ds, err)
	}
}

func TestEvaluateOrShortCircuit(t *testing.T) {
	// The right side references an unbound field; with a true left side
	// the evaluator must short-circuit and not error.
	pol := MustParse(`policy "x" {
		disclose task.reward to workers when task.reward > 1 or worker.completed > 3;
	}`)
	cat := StandardCatalogue()
	ctx := NewContext().SetNum(SubjectTask, "reward", 5)
	ds, err := pol.Evaluate(cat, ctx, AudienceWorkers, TriggerTaskView)
	if err != nil || len(ds) != 1 {
		t.Fatalf("short circuit = %v, %v", ds, err)
	}
}

func TestEvaluateUnboundFieldErrors(t *testing.T) {
	pol := MustParse(`policy "x" {
		disclose task.reward to workers when worker.completed > 3;
	}`)
	cat := StandardCatalogue()
	_, err := pol.Evaluate(cat, NewContext(), AudienceWorkers, TriggerTaskView)
	if !errors.Is(err, ErrUnboundField) {
		t.Fatalf("error = %v", err)
	}
}

func TestEvaluateTypeMismatchErrors(t *testing.T) {
	// Hand-built rule bypassing the static checker: number vs string.
	pol := &Policy{Name: "x", Rules: []*Rule{{
		Field: FieldRef{SubjectTask, "reward"},
		To:    AudienceWorkers, On: TriggerAlways,
		When: &BinaryExpr{Op: "==",
			Left:  &NumberExpr{Value: 1},
			Right: &StringExpr{Value: "1"}},
	}}}
	_, err := pol.Evaluate(StandardCatalogue(), NewContext(), AudienceWorkers, TriggerTaskView)
	if !errors.Is(err, ErrTypeMismatch) {
		t.Fatalf("error = %v", err)
	}
}

func TestEvaluateDeterministicOrder(t *testing.T) {
	pol := MustParse(`policy "x" {
		disclose worker.performance to workers always;
		disclose requester.hourly_wage to workers always;
		disclose platform.payment_schedule to workers always;
	}`)
	ds, err := pol.Evaluate(StandardCatalogue(), NewContext(), AudienceWorkers, TriggerTaskView)
	if err != nil {
		t.Fatal(err)
	}
	// Sorted by subject then field: platform < requester < worker.
	if ds[0].Field.Subject != SubjectPlatform || ds[2].Field.Subject != SubjectWorker {
		t.Fatalf("order = %v", ds)
	}
}

func TestCatalogueCheck(t *testing.T) {
	cat := StandardCatalogue()
	good := MustParse(samplePolicy)
	if errs := cat.Check(good); len(errs) != 0 {
		t.Fatalf("valid policy failed check: %v", errs)
	}
	bad := MustParse(`policy "x" {
		disclose worker.shoe_size to workers always;
		disclose task.reward to workers when task.reward == "high";
		disclose task.reward to workers when task.recruitment_criteria > 3;
	}`)
	errs := cat.Check(bad)
	if len(errs) != 3 {
		t.Fatalf("check errors = %v", errs)
	}
	if !errors.Is(errs[0], ErrUnknownField) {
		t.Errorf("first error = %v", errs[0])
	}
}

func TestCatalogueLookupAndEntries(t *testing.T) {
	cat := StandardCatalogue()
	e, err := cat.Lookup(FieldRef{SubjectRequester, "hourly_wage"})
	if err != nil || !e.Axiom6 {
		t.Fatalf("hourly_wage = %+v, %v", e, err)
	}
	if _, err := cat.Lookup(FieldRef{SubjectWorker, "nope"}); !errors.Is(err, ErrUnknownField) {
		t.Fatalf("unknown lookup = %v", err)
	}
	if len(cat.RequiredFor(6)) != 4 {
		t.Fatalf("axiom 6 fields = %v", cat.RequiredFor(6))
	}
	if len(cat.RequiredFor(7)) != 2 {
		t.Fatalf("axiom 7 fields = %v", cat.RequiredFor(7))
	}
}

func TestNewCatalogueRejectsDuplicates(t *testing.T) {
	e := CatalogueEntry{Ref: FieldRef{SubjectTask, "x"}, Kind: FieldNum}
	if _, err := NewCatalogue(e, e); err == nil {
		t.Fatal("duplicate entries accepted")
	}
	bad := CatalogueEntry{Ref: FieldRef{"alien", "x"}}
	if _, err := NewCatalogue(bad); err == nil {
		t.Fatal("bad subject accepted")
	}
}
