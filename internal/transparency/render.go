package transparency

import (
	"fmt"
	"strings"
)

// Render translates a policy into the human-readable description the paper
// calls for ("rules can also be translated into human-readable descriptions
// for workers' consumption"). Field phrasings come from the catalogue;
// fields missing from the catalogue fall back to their reference text so
// rendering never fails.
func Render(p *Policy, cat *Catalogue) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Transparency commitments of %q:\n", p.Name)
	if len(p.Rules) == 0 {
		b.WriteString("  (none — this policy discloses nothing)\n")
		return b.String()
	}
	for i, r := range p.Rules {
		fmt.Fprintf(&b, "  %d. %s\n", i+1, RenderRule(r, cat))
	}
	return b.String()
}

// RenderRule renders one rule as an English sentence.
func RenderRule(r *Rule, cat *Catalogue) string {
	noun := r.Field.String()
	if cat != nil {
		if e, err := cat.Lookup(r.Field); err == nil {
			noun = e.Description
		}
	}
	var b strings.Builder
	switch r.To {
	case AudienceWorkers:
		b.WriteString("Workers can see ")
	case AudienceRequesters:
		b.WriteString("Requesters can see ")
	case AudiencePublic:
		b.WriteString("Everyone can see ")
	}
	b.WriteString(noun)
	switch r.On {
	case TriggerAlways:
		b.WriteString(" at all times")
	case TriggerTaskView:
		b.WriteString(" when viewing a task")
	case TriggerSubmission:
		b.WriteString(" when a contribution is submitted")
	case TriggerRejection:
		b.WriteString(" when a contribution is rejected")
	case TriggerPayment:
		b.WriteString(" when a payment is issued")
	case TriggerSignup:
		b.WriteString(" when signing up")
	}
	if r.When != nil {
		b.WriteString(", provided that ")
		b.WriteString(renderExpr(r.When, cat))
	}
	b.WriteString(".")
	return b.String()
}

func renderExpr(e Expr, cat *Catalogue) string {
	switch x := e.(type) {
	case *NotExpr:
		return "it is not the case that " + renderExpr(x.X, cat)
	case *BinaryExpr:
		switch x.Op {
		case "and":
			return renderExpr(x.Left, cat) + " and " + renderExpr(x.Right, cat)
		case "or":
			return renderExpr(x.Left, cat) + " or " + renderExpr(x.Right, cat)
		default:
			return renderOperand(x.Left, cat) + " " + renderOp(x.Op) + " " + renderOperand(x.Right, cat)
		}
	case *FieldExpr, *NumberExpr, *StringExpr:
		return renderOperand(e, cat)
	default:
		return "?"
	}
}

func renderOperand(e Expr, cat *Catalogue) string {
	switch x := e.(type) {
	case *FieldExpr:
		if cat != nil {
			if entry, err := cat.Lookup(x.Ref); err == nil {
				return entry.Description
			}
		}
		return x.Ref.String()
	case *NumberExpr:
		return x.exprString()
	case *StringExpr:
		return fmt.Sprintf("%q", x.Value)
	default:
		return "?"
	}
}

func renderOp(op string) string {
	switch op {
	case "==":
		return "is"
	case "!=":
		return "is not"
	case "<":
		return "is below"
	case "<=":
		return "is at most"
	case ">":
		return "is above"
	case ">=":
		return "is at least"
	default:
		return op
	}
}
