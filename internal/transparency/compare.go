package transparency

import (
	"fmt"
	"sort"
	"strings"
)

// Comparison is the result of diffing two policies — the cross-platform
// comparison the paper highlights as a benefit of declarative rules ("the
// declarative nature of those rules will allow easy comparison across
// platforms").
type Comparison struct {
	A, B string // policy names
	// OnlyA / OnlyB are fields disclosed by one policy but not the other.
	OnlyA []FieldRef
	OnlyB []FieldRef
	// Shared are fields both disclose; Weaker lists shared fields where one
	// side attaches strictly more restrictive gating (a condition or a
	// narrower trigger) than the other.
	Shared []FieldRef
	Weaker []WeakerDisclosure
}

// WeakerDisclosure records a shared field that one policy gates harder.
type WeakerDisclosure struct {
	Field FieldRef
	// WeakerSide is the policy name whose disclosure is more restricted.
	WeakerSide string
	Reason     string
}

// Compare diffs two policies field-by-field.
func Compare(a, b *Policy) *Comparison {
	cmp := &Comparison{A: a.Name, B: b.Name}
	fieldsA := bestRules(a)
	fieldsB := bestRules(b)

	var refs []FieldRef
	seen := make(map[FieldRef]bool)
	for ref := range fieldsA {
		if !seen[ref] {
			seen[ref] = true
			refs = append(refs, ref)
		}
	}
	for ref := range fieldsB {
		if !seen[ref] {
			seen[ref] = true
			refs = append(refs, ref)
		}
	}
	sort.Slice(refs, func(i, j int) bool {
		if refs[i].Subject != refs[j].Subject {
			return refs[i].Subject < refs[j].Subject
		}
		return refs[i].Field < refs[j].Field
	})

	for _, ref := range refs {
		ra, inA := fieldsA[ref]
		rb, inB := fieldsB[ref]
		switch {
		case inA && !inB:
			cmp.OnlyA = append(cmp.OnlyA, ref)
		case inB && !inA:
			cmp.OnlyB = append(cmp.OnlyB, ref)
		default:
			cmp.Shared = append(cmp.Shared, ref)
			sa, sb := strictness(ra), strictness(rb)
			if sa > sb {
				cmp.Weaker = append(cmp.Weaker, WeakerDisclosure{
					Field: ref, WeakerSide: a.Name,
					Reason: fmt.Sprintf("%q gates it (%s) while %q does not", a.Name, gateDesc(ra), b.Name),
				})
			} else if sb > sa {
				cmp.Weaker = append(cmp.Weaker, WeakerDisclosure{
					Field: ref, WeakerSide: b.Name,
					Reason: fmt.Sprintf("%q gates it (%s) while %q does not", b.Name, gateDesc(rb), a.Name),
				})
			}
		}
	}
	return cmp
}

// bestRules returns, per field, the least-restrictive rule disclosing it.
func bestRules(p *Policy) map[FieldRef]*Rule {
	out := make(map[FieldRef]*Rule)
	for _, r := range p.Rules {
		cur, ok := out[r.Field]
		if !ok || strictness(r) < strictness(cur) {
			out[r.Field] = r
		}
	}
	return out
}

// strictness orders rules from most open (0) to most gated.
func strictness(r *Rule) int {
	s := 0
	if r.On != TriggerAlways {
		s++
	}
	if r.When != nil {
		s += 2
	}
	return s
}

func gateDesc(r *Rule) string {
	var parts []string
	if r.On != TriggerAlways {
		parts = append(parts, "only on "+string(r.On))
	}
	if r.When != nil {
		parts = append(parts, "only when "+r.When.exprString())
	}
	if len(parts) == 0 {
		return "unconditionally"
	}
	return strings.Join(parts, " and ")
}

// String renders the comparison as a readable report.
func (c *Comparison) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Comparing %q and %q:\n", c.A, c.B)
	writeRefList(&b, fmt.Sprintf("only %q discloses", c.A), c.OnlyA)
	writeRefList(&b, fmt.Sprintf("only %q discloses", c.B), c.OnlyB)
	writeRefList(&b, "both disclose", c.Shared)
	for _, w := range c.Weaker {
		fmt.Fprintf(&b, "  weaker on %s: %s\n", w.Field, w.Reason)
	}
	return b.String()
}

func writeRefList(b *strings.Builder, label string, refs []FieldRef) {
	if len(refs) == 0 {
		return
	}
	strs := make([]string, len(refs))
	for i, r := range refs {
		strs[i] = r.String()
	}
	fmt.Fprintf(b, "  %s: %s\n", label, strings.Join(strs, ", "))
}

// TransparencyScore quantifies how much a policy discloses, as the share of
// catalogue fields it discloses to workers weighted by openness (ungated
// rules count 1, triggered 0.75, conditional 0.5). The §4.1 experiment E6
// sweeps this score against worker retention. Scores are in [0,1].
func TransparencyScore(p *Policy, cat *Catalogue) float64 {
	entries := cat.Entries()
	if len(entries) == 0 {
		return 0
	}
	best := bestRules(p)
	var total float64
	for _, e := range entries {
		r, ok := best[e.Ref]
		if !ok || (r.To != AudienceWorkers && r.To != AudiencePublic) {
			continue
		}
		switch strictness(r) {
		case 0:
			total += 1
		case 1:
			total += 0.75
		default:
			total += 0.5
		}
	}
	return total / float64(len(entries))
}
