package transparency

import (
	"fmt"
	"sort"

	"repro/internal/eventlog"
	"repro/internal/model"
)

// AxiomReport is the outcome of auditing a transparency axiom (6 or 7).
type AxiomReport struct {
	Axiom int
	// Required lists the field refs the axiom demands.
	Required []FieldRef
	// Missing lists required refs the audited party never disclosed.
	Missing []FieldRef
	// Detail explains per-entity gaps.
	Detail []string
}

// Satisfied reports whether the axiom held.
func (r *AxiomReport) Satisfied() bool { return len(r.Missing) == 0 && len(r.Detail) == 0 }

// String renders a one-line summary.
func (r *AxiomReport) String() string {
	return fmt.Sprintf("Axiom %d: required=%d missing=%d gaps=%d",
		r.Axiom, len(r.Required), len(r.Missing), len(r.Detail))
}

// CheckAxiom6 audits requester transparency:
//
//	"A Requester must make available requester-dependent working conditions
//	 such as hourly wage and time between submission of work and payment,
//	 and task-dependent working conditions such as recruitment criteria and
//	 rejection criteria."
//
// For each requester appearing in the log, every Axiom-6 field of the
// catalogue must appear in at least one Disclosure event attributed to that
// requester (requester-subject fields), and each of their tasks must have
// its task-subject fields disclosed.
func CheckAxiom6(cat *Catalogue, log *eventlog.Log) *AxiomReport {
	rep := &AxiomReport{Axiom: 6, Required: cat.RequiredFor(6)}

	requesters := make(map[model.RequesterID]bool)
	taskOwner := make(map[model.TaskID]model.RequesterID)
	disclosedReq := make(map[model.RequesterID]map[string]bool)
	disclosedTask := make(map[model.TaskID]map[string]bool)
	for _, e := range log.Events() {
		switch e.Type {
		case eventlog.TaskPosted:
			requesters[e.Requester] = true
			taskOwner[e.Task] = e.Requester
		case eventlog.Disclosure:
			if e.Requester != "" && e.Task == "" {
				m := disclosedReq[e.Requester]
				if m == nil {
					m = make(map[string]bool)
					disclosedReq[e.Requester] = m
				}
				m[e.Field] = true
			}
			if e.Task != "" {
				m := disclosedTask[e.Task]
				if m == nil {
					m = make(map[string]bool)
					disclosedTask[e.Task] = m
				}
				m[e.Field] = true
			}
		}
	}

	missing := make(map[FieldRef]bool)
	var reqIDs []model.RequesterID
	for r := range requesters {
		reqIDs = append(reqIDs, r)
	}
	sort.Slice(reqIDs, func(i, j int) bool { return reqIDs[i] < reqIDs[j] })
	var taskIDs []model.TaskID
	for t := range taskOwner {
		taskIDs = append(taskIDs, t)
	}
	sort.Slice(taskIDs, func(i, j int) bool { return taskIDs[i] < taskIDs[j] })

	for _, ref := range rep.Required {
		switch ref.Subject {
		case SubjectRequester:
			for _, r := range reqIDs {
				if !disclosedReq[r][ref.String()] {
					missing[ref] = true
					rep.Detail = append(rep.Detail,
						fmt.Sprintf("requester %s never disclosed %s", r, ref))
				}
			}
		case SubjectTask:
			for _, t := range taskIDs {
				if !disclosedTask[t][ref.String()] {
					missing[ref] = true
					rep.Detail = append(rep.Detail,
						fmt.Sprintf("task %s (requester %s) never disclosed %s", t, taskOwner[t], ref))
				}
			}
		}
	}
	for _, ref := range rep.Required {
		if missing[ref] {
			rep.Missing = append(rep.Missing, ref)
		}
	}
	return rep
}

// CheckAxiom7 audits platform transparency:
//
//	"The platform must disclose, for each worker w, computed attributes Cw
//	 such as performance and acceptance ratio."
//
// Every worker that appears in the log (joined or active) must have each
// Axiom-7 field disclosed to them at least once.
func CheckAxiom7(cat *Catalogue, log *eventlog.Log) *AxiomReport {
	rep := &AxiomReport{Axiom: 7, Required: cat.RequiredFor(7)}

	workers := make(map[model.WorkerID]bool)
	disclosed := make(map[model.WorkerID]map[string]bool)
	for _, e := range log.Events() {
		switch e.Type {
		case eventlog.WorkerJoined, eventlog.TaskStarted, eventlog.TaskSubmitted:
			workers[e.Worker] = true
		case eventlog.Disclosure:
			if e.Worker != "" {
				m := disclosed[e.Worker]
				if m == nil {
					m = make(map[string]bool)
					disclosed[e.Worker] = m
				}
				m[e.Field] = true
			}
		}
	}

	var ids []model.WorkerID
	for w := range workers {
		ids = append(ids, w)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	missing := make(map[FieldRef]bool)
	for _, ref := range rep.Required {
		if ref.Subject != SubjectWorker {
			continue
		}
		for _, w := range ids {
			if !disclosed[w][ref.String()] {
				missing[ref] = true
				rep.Detail = append(rep.Detail,
					fmt.Sprintf("platform never disclosed %s to worker %s", ref, w))
			}
		}
	}
	for _, ref := range rep.Required {
		if missing[ref] {
			rep.Missing = append(rep.Missing, ref)
		}
	}
	return rep
}

// PolicyCompliance audits an event trace against a specific policy: every
// field the policy promises "always" to an audience must appear as a
// Disclosure event at least once for each member of that audience seen in
// the trace. It returns human-readable gap descriptions (empty = compliant).
//
// Conditional and triggered rules are not audited here — verifying them
// requires replaying contexts, which the simulator does natively by only
// emitting Disclosure events the policy mandates.
func PolicyCompliance(p *Policy, log *eventlog.Log) []string {
	var gaps []string

	workers := make(map[model.WorkerID]bool)
	disclosedToWorker := make(map[model.WorkerID]map[string]bool)
	for _, e := range log.Events() {
		switch e.Type {
		case eventlog.WorkerJoined:
			workers[e.Worker] = true
		case eventlog.Disclosure:
			if e.Worker != "" {
				m := disclosedToWorker[e.Worker]
				if m == nil {
					m = make(map[string]bool)
					disclosedToWorker[e.Worker] = m
				}
				m[e.Field] = true
			}
		}
	}
	var ids []model.WorkerID
	for w := range workers {
		ids = append(ids, w)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	for _, r := range p.Rules {
		if r.On != TriggerAlways || r.When != nil {
			continue
		}
		if r.To != AudienceWorkers && r.To != AudiencePublic {
			continue
		}
		field := r.Field.String()
		for _, w := range ids {
			if !disclosedToWorker[w][field] {
				gaps = append(gaps, fmt.Sprintf("policy %q promises %s to workers always, but worker %s never saw it",
					p.Name, field, w))
			}
		}
	}
	return gaps
}
