package transparency

import (
	"fmt"
	"strconv"
)

// Parse parses policy source text into a Policy. The grammar:
//
//	policy     = "policy" STRING "{" rule* "}"
//	rule       = "disclose" fieldref "to" audience when-part? cond-part? ";"
//	fieldref   = IDENT "." IDENT
//	audience   = "workers" | "requesters" | "public"
//	when-part  = "always" | "on" IDENT
//	cond-part  = "when" expr
//	expr       = orExpr
//	orExpr     = andExpr ("or" andExpr)*
//	andExpr    = unary ("and" unary)*
//	unary      = "not" unary | comparison
//	comparison = operand OP operand | "(" expr ")"
//	operand    = fieldref | NUMBER | STRING
//
// Conditions are restricted to comparisons (no bare booleans), which keeps
// evaluation total over the typed context.
func Parse(src string) (*Policy, error) {
	p := &parser{lex: newLexer(src)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	pol, err := p.parsePolicy()
	if err != nil {
		return nil, err
	}
	if p.cur.kind != tokEOF {
		return nil, p.errf("unexpected %s after policy", p.cur.kind)
	}
	return pol, nil
}

// MustParse is Parse that panics on error; for literal policies in tests
// and examples.
func MustParse(src string) *Policy {
	pol, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return pol
}

type parser struct {
	lex *lexer
	cur token
}

func (p *parser) errf(format string, args ...any) *SyntaxError {
	return &SyntaxError{Line: p.cur.line, Col: p.cur.col, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) advance() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.cur = t
	return nil
}

// expect consumes the current token if it matches, else errors.
func (p *parser) expect(k tokenKind, what string) (token, error) {
	if p.cur.kind != k {
		return token{}, p.errf("expected %s, found %s %q", what, p.cur.kind, p.cur.text)
	}
	t := p.cur
	if err := p.advance(); err != nil {
		return token{}, err
	}
	return t, nil
}

// keyword consumes an identifier with the given text.
func (p *parser) keyword(kw string) error {
	if p.cur.kind != tokIdent || p.cur.text != kw {
		return p.errf("expected %q, found %q", kw, p.cur.text)
	}
	return p.advance()
}

func (p *parser) atKeyword(kw string) bool {
	return p.cur.kind == tokIdent && p.cur.text == kw
}

func (p *parser) parsePolicy() (*Policy, error) {
	if err := p.keyword("policy"); err != nil {
		return nil, err
	}
	name, err := p.expect(tokString, "policy name string")
	if err != nil {
		return nil, err
	}
	if name.text == "" {
		return nil, p.errf("policy name must not be empty")
	}
	if _, err := p.expect(tokLBrace, "'{'"); err != nil {
		return nil, err
	}
	pol := &Policy{Name: name.text}
	for p.cur.kind != tokRBrace {
		r, err := p.parseRule()
		if err != nil {
			return nil, err
		}
		pol.Rules = append(pol.Rules, r)
	}
	if _, err := p.expect(tokRBrace, "'}'"); err != nil {
		return nil, err
	}
	return pol, nil
}

func (p *parser) parseRule() (*Rule, error) {
	line := p.cur.line
	if err := p.keyword("disclose"); err != nil {
		return nil, err
	}
	ref, err := p.parseFieldRef()
	if err != nil {
		return nil, err
	}
	if err := p.keyword("to"); err != nil {
		return nil, err
	}
	aud, err := p.expect(tokIdent, "audience")
	if err != nil {
		return nil, err
	}
	audience := Audience(aud.text)
	if !validAudience(audience) {
		return nil, p.errf("unknown audience %q (want workers, requesters, or public)", aud.text)
	}

	rule := &Rule{Field: ref, To: audience, On: TriggerAlways, Line: line}
	switch {
	case p.atKeyword("always"):
		if err := p.advance(); err != nil {
			return nil, err
		}
	case p.atKeyword("on"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		trig, err := p.expect(tokIdent, "trigger name")
		if err != nil {
			return nil, err
		}
		t := Trigger(trig.text)
		if !validTrigger(t) {
			return nil, p.errf("unknown trigger %q", trig.text)
		}
		rule.On = t
	}
	if p.atKeyword("when") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		cond, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		rule.When = cond
	}
	if _, err := p.expect(tokSemi, "';'"); err != nil {
		return nil, err
	}
	return rule, nil
}

func (p *parser) parseFieldRef() (FieldRef, error) {
	subj, err := p.expect(tokIdent, "subject (requester/platform/worker/task)")
	if err != nil {
		return FieldRef{}, err
	}
	s := Subject(subj.text)
	if !validSubject(s) {
		return FieldRef{}, p.errf("unknown subject %q (want requester, platform, worker, or task)", subj.text)
	}
	if _, err := p.expect(tokDot, "'.'"); err != nil {
		return FieldRef{}, err
	}
	field, err := p.expect(tokIdent, "field name")
	if err != nil {
		return FieldRef{}, err
	}
	return FieldRef{Subject: s, Field: field.text}, nil
}

func (p *parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.atKeyword("or") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: "or", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.atKeyword("and") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: "and", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseUnary() (Expr, error) {
	if p.atKeyword("not") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &NotExpr{X: x}, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (Expr, error) {
	if p.cur.kind == tokLParen {
		if err := p.advance(); err != nil {
			return nil, err
		}
		inner, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, "')'"); err != nil {
			return nil, err
		}
		return inner, nil
	}
	left, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	op, err := p.expect(tokOp, "comparison operator")
	if err != nil {
		return nil, err
	}
	switch op.text {
	case "==", "!=", "<", "<=", ">", ">=":
	default:
		return nil, p.errf("unknown operator %q", op.text)
	}
	right, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	return &BinaryExpr{Op: op.text, Left: left, Right: right}, nil
}

func (p *parser) parseOperand() (Expr, error) {
	switch p.cur.kind {
	case tokNumber:
		v, err := strconv.ParseFloat(p.cur.text, 64)
		if err != nil {
			return nil, p.errf("bad number %q", p.cur.text)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &NumberExpr{Value: v}, nil
	case tokString:
		v := p.cur.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &StringExpr{Value: v}, nil
	case tokIdent:
		ref, err := p.parseFieldRef()
		if err != nil {
			return nil, err
		}
		return &FieldExpr{Ref: ref}, nil
	default:
		return nil, p.errf("expected operand, found %s %q", p.cur.kind, p.cur.text)
	}
}
