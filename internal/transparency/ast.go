package transparency

import (
	"fmt"
	"strconv"
	"strings"
)

// Subject names the entity a disclosed field belongs to.
type Subject string

// Subjects of the disclosure language.
const (
	SubjectRequester Subject = "requester"
	SubjectPlatform  Subject = "platform"
	SubjectWorker    Subject = "worker"
	SubjectTask      Subject = "task"
)

// validSubject reports whether s is one of the four subjects.
func validSubject(s Subject) bool {
	switch s {
	case SubjectRequester, SubjectPlatform, SubjectWorker, SubjectTask:
		return true
	}
	return false
}

// Audience names who a rule discloses to.
type Audience string

// Audiences of the disclosure language.
const (
	AudienceWorkers    Audience = "workers"
	AudienceRequesters Audience = "requesters"
	AudiencePublic     Audience = "public"
)

func validAudience(a Audience) bool {
	switch a {
	case AudienceWorkers, AudienceRequesters, AudiencePublic:
		return true
	}
	return false
}

// Trigger names the platform moment at which a rule fires.
type Trigger string

// Triggers. TriggerAlways means the item is permanently visible.
const (
	TriggerAlways     Trigger = "always"
	TriggerTaskView   Trigger = "task_view"  // when a worker views a task
	TriggerSubmission Trigger = "submission" // when a contribution is submitted
	TriggerRejection  Trigger = "rejection"  // when a contribution is rejected
	TriggerPayment    Trigger = "payment"    // when a payment is issued
	TriggerSignup     Trigger = "signup"     // when a worker joins
)

func validTrigger(t Trigger) bool {
	switch t {
	case TriggerAlways, TriggerTaskView, TriggerSubmission, TriggerRejection, TriggerPayment, TriggerSignup:
		return true
	}
	return false
}

// FieldRef is a subject.field reference, e.g. requester.hourly_wage.
type FieldRef struct {
	Subject Subject
	Field   string
}

// String renders the reference in source form.
func (f FieldRef) String() string { return string(f.Subject) + "." + f.Field }

// Expr is a boolean condition attached to a rule with "when".
type Expr interface {
	// exprString renders the expression in source form.
	exprString() string
	isExpr()
}

// BinaryExpr is "lhs op rhs" where op is and/or, or a comparison.
type BinaryExpr struct {
	Op    string // "and", "or", "==", "!=", "<", "<=", ">", ">="
	Left  Expr
	Right Expr
}

func (e *BinaryExpr) isExpr() {}
func (e *BinaryExpr) exprString() string {
	return fmt.Sprintf("(%s %s %s)", e.Left.exprString(), e.Op, e.Right.exprString())
}

// NotExpr is "not expr".
type NotExpr struct{ X Expr }

func (e *NotExpr) isExpr()            {}
func (e *NotExpr) exprString() string { return "not " + e.X.exprString() }

// FieldExpr is a field reference operand.
type FieldExpr struct{ Ref FieldRef }

func (e *FieldExpr) isExpr()            {}
func (e *FieldExpr) exprString() string { return e.Ref.String() }

// NumberExpr is a numeric literal operand.
type NumberExpr struct{ Value float64 }

func (e *NumberExpr) isExpr() {}
func (e *NumberExpr) exprString() string {
	return strconv.FormatFloat(e.Value, 'g', -1, 64)
}

// StringExpr is a string literal operand.
type StringExpr struct{ Value string }

func (e *StringExpr) isExpr()            {}
func (e *StringExpr) exprString() string { return strconv.Quote(e.Value) }

// Rule is one "disclose" statement.
type Rule struct {
	// Field is what is disclosed.
	Field FieldRef
	// To is who sees it.
	To Audience
	// On is when the disclosure happens (TriggerAlways by default).
	On Trigger
	// When is an optional gating condition; nil means unconditional.
	When Expr
	// Line is the source line of the rule, for diagnostics.
	Line int
}

// String renders the rule in canonical source form.
func (r *Rule) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "disclose %s to %s", r.Field, r.To)
	if r.On == TriggerAlways {
		b.WriteString(" always")
	} else {
		fmt.Fprintf(&b, " on %s", r.On)
	}
	if r.When != nil {
		fmt.Fprintf(&b, " when %s", r.When.exprString())
	}
	b.WriteString(";")
	return b.String()
}

// Policy is a named set of disclosure rules — what a requester or a
// platform commits to making transparent.
type Policy struct {
	Name  string
	Rules []*Rule
}

// String renders the policy in canonical source form, suitable for
// re-parsing (the parser round-trips it).
func (p *Policy) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "policy %q {\n", p.Name)
	for _, r := range p.Rules {
		fmt.Fprintf(&b, "    %s\n", r)
	}
	b.WriteString("}\n")
	return b.String()
}

// RulesFor returns the rules disclosing to the given audience (public rules
// disclose to everyone and are always included).
func (p *Policy) RulesFor(a Audience) []*Rule {
	var out []*Rule
	for _, r := range p.Rules {
		if r.To == a || r.To == AudiencePublic {
			out = append(out, r)
		}
	}
	return out
}

// Fields returns the distinct disclosed field references in rule order.
func (p *Policy) Fields() []FieldRef {
	seen := make(map[FieldRef]bool)
	var out []FieldRef
	for _, r := range p.Rules {
		if !seen[r.Field] {
			seen[r.Field] = true
			out = append(out, r.Field)
		}
	}
	return out
}
