package transparency

import (
	"strings"
	"testing"
)

func TestLintCleanPolicy(t *testing.T) {
	pol := MustParse(`policy "clean" {
		disclose task.reward to workers always;
		disclose requester.hourly_wage to workers on task_view;
		disclose worker.performance to requesters always;
	}`)
	if ws := Lint(pol); len(ws) != 0 {
		t.Fatalf("warnings on clean policy: %v", ws)
	}
}

func TestLintDuplicates(t *testing.T) {
	pol := MustParse(`policy "dup" {
		disclose task.reward to workers always;
		disclose task.reward to workers always;
	}`)
	ws := Lint(pol)
	if len(ws) != 1 || ws[0].Rule != 1 {
		t.Fatalf("warnings = %v", ws)
	}
	if !strings.Contains(ws[0].String(), "duplicate of rule 1") {
		t.Fatalf("message = %s", ws[0])
	}
}

func TestLintShadowedByAlways(t *testing.T) {
	pol := MustParse(`policy "shadow" {
		disclose task.reward to workers always;
		disclose task.reward to workers on task_view;
		disclose task.reward to workers when worker.completed >= 5;
	}`)
	ws := Lint(pol)
	if len(ws) != 2 {
		t.Fatalf("warnings = %v", ws)
	}
	for _, w := range ws {
		if !strings.Contains(w.Msg, "shadowed") {
			t.Fatalf("message = %s", w)
		}
	}
}

func TestLintPublicCoversWorkers(t *testing.T) {
	pol := MustParse(`policy "pub" {
		disclose platform.requester_rating to public always;
		disclose platform.requester_rating to workers always;
	}`)
	ws := Lint(pol)
	if len(ws) != 1 || !strings.Contains(ws[0].Msg, "shadowed") {
		t.Fatalf("warnings = %v", ws)
	}
}

func TestLintNoFalsePositives(t *testing.T) {
	// A triggered rule does NOT shadow an always rule; a conditional rule
	// does not shadow an unconditional one; different audiences do not
	// shadow each other.
	pol := MustParse(`policy "ok" {
		disclose task.reward to workers on task_view;
		disclose task.reward to workers always;
		disclose task.reward to requesters always;
	}`)
	// Rule 2 (always) is broader than rule 1, so rule 1 does not shadow
	// rule 2 — but lint walks earlier rules only, so rule 2 is kept, and
	// rule 3 targets a different audience.
	for _, w := range Lint(pol) {
		if w.Rule == 1 || w.Rule == 2 {
			t.Fatalf("false positive: %v", w)
		}
	}
}

func TestLintIdenticalConditionsShadow(t *testing.T) {
	pol := MustParse(`policy "cond" {
		disclose task.reward to workers when worker.completed >= 5;
		disclose task.reward to workers when worker.completed >= 5;
	}`)
	ws := Lint(pol)
	if len(ws) != 1 {
		t.Fatalf("warnings = %v", ws)
	}
}
