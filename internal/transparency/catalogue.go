package transparency

import (
	"errors"
	"fmt"
	"sort"
)

// FieldKind types a catalogue field.
type FieldKind uint8

// Field kinds.
const (
	FieldNum FieldKind = iota
	FieldStr
)

// CatalogueEntry describes one disclosable information item: its type and
// the human-readable phrasing the renderer uses.
type CatalogueEntry struct {
	Ref  FieldRef
	Kind FieldKind
	// Description is the noun phrase inserted into rendered rules, e.g.
	// "the hourly wage offered by the requester".
	Description string
	// Axiom6 marks fields whose disclosure Axiom 6 requires of requesters;
	// Axiom7 marks fields whose disclosure Axiom 7 requires of the platform.
	Axiom6 bool
	Axiom7 bool
}

// Catalogue is the schema of disclosable fields a platform supports. Static
// checking validates every policy against it.
type Catalogue struct {
	entries map[FieldRef]CatalogueEntry
}

// ErrUnknownField is wrapped by checker errors for out-of-catalogue refs.
var ErrUnknownField = errors.New("transparency: field not in catalogue")

// NewCatalogue builds a catalogue from entries; duplicate refs error.
func NewCatalogue(entries ...CatalogueEntry) (*Catalogue, error) {
	c := &Catalogue{entries: make(map[FieldRef]CatalogueEntry, len(entries))}
	for _, e := range entries {
		if !validSubject(e.Ref.Subject) {
			return nil, fmt.Errorf("transparency: catalogue entry %s: unknown subject", e.Ref)
		}
		if _, dup := c.entries[e.Ref]; dup {
			return nil, fmt.Errorf("transparency: duplicate catalogue entry %s", e.Ref)
		}
		c.entries[e.Ref] = e
	}
	return c, nil
}

// Lookup returns the entry for ref.
func (c *Catalogue) Lookup(ref FieldRef) (CatalogueEntry, error) {
	e, ok := c.entries[ref]
	if !ok {
		return CatalogueEntry{}, fmt.Errorf("%w: %s", ErrUnknownField, ref)
	}
	return e, nil
}

// Entries returns all entries sorted by reference.
func (c *Catalogue) Entries() []CatalogueEntry {
	out := make([]CatalogueEntry, 0, len(c.entries))
	for _, e := range c.entries {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Ref.Subject != out[j].Ref.Subject {
			return out[i].Ref.Subject < out[j].Ref.Subject
		}
		return out[i].Ref.Field < out[j].Ref.Field
	})
	return out
}

// RequiredFor returns the refs that the given axiom (6 or 7) requires to be
// disclosed, sorted.
func (c *Catalogue) RequiredFor(axiom int) []FieldRef {
	var out []FieldRef
	for _, e := range c.Entries() {
		if (axiom == 6 && e.Axiom6) || (axiom == 7 && e.Axiom7) {
			out = append(out, e.Ref)
		}
	}
	return out
}

// StandardCatalogue returns the disclosure schema assembled from the
// paper's own inventory: Axiom 6's requester-dependent working conditions
// ("hourly wage and time between submission of work and payment") and
// task-dependent conditions ("recruitment criteria and rejection
// criteria"), Axiom 7's computed worker attributes ("performance and
// acceptance ratio"), plus the platform-opacity items of §3.1.2 (requester
// ratings, payment schedules, worker progress).
func StandardCatalogue() *Catalogue {
	c, err := NewCatalogue(
		CatalogueEntry{Ref: FieldRef{SubjectRequester, "hourly_wage"}, Kind: FieldNum,
			Description: "the expected hourly wage for the requester's tasks", Axiom6: true},
		CatalogueEntry{Ref: FieldRef{SubjectRequester, "payment_delay"}, Kind: FieldNum,
			Description: "the time between submission of work and payment", Axiom6: true},
		CatalogueEntry{Ref: FieldRef{SubjectTask, "recruitment_criteria"}, Kind: FieldStr,
			Description: "the criteria used to recruit workers for the task", Axiom6: true},
		CatalogueEntry{Ref: FieldRef{SubjectTask, "rejection_criteria"}, Kind: FieldStr,
			Description: "the conditions under which work on the task may be rejected", Axiom6: true},
		CatalogueEntry{Ref: FieldRef{SubjectTask, "evaluation_scheme"}, Kind: FieldStr,
			Description: "how contributions to the task are evaluated"},
		CatalogueEntry{Ref: FieldRef{SubjectTask, "reward"}, Kind: FieldNum,
			Description: "the reward paid on completing the task"},
		CatalogueEntry{Ref: FieldRef{SubjectWorker, "performance"}, Kind: FieldNum,
			Description: "the worker's estimated performance so far", Axiom7: true},
		CatalogueEntry{Ref: FieldRef{SubjectWorker, "acceptance_ratio"}, Kind: FieldNum,
			Description: "the worker's acceptance ratio", Axiom7: true},
		CatalogueEntry{Ref: FieldRef{SubjectWorker, "completed"}, Kind: FieldNum,
			Description: "the number of tasks the worker has completed"},
		CatalogueEntry{Ref: FieldRef{SubjectWorker, "consent"}, Kind: FieldStr,
			Description: "whether the worker consented to data sharing"},
		CatalogueEntry{Ref: FieldRef{SubjectPlatform, "requester_rating"}, Kind: FieldNum,
			Description: "the platform's rating of the requester"},
		CatalogueEntry{Ref: FieldRef{SubjectPlatform, "payment_schedule"}, Kind: FieldStr,
			Description: "the platform's payment schedule"},
		CatalogueEntry{Ref: FieldRef{SubjectPlatform, "auto_approval_delay"}, Kind: FieldNum,
			Description: "the time until a submission is automatically approved"},
		CatalogueEntry{Ref: FieldRef{SubjectPlatform, "worker_progress"}, Kind: FieldNum,
			Description: "the worker's live progress relative to other workers"},
	)
	if err != nil {
		panic(err) // the standard catalogue is a package invariant
	}
	return c
}

// Check statically validates a policy against the catalogue: every
// disclosed field and every field referenced in a condition must exist, and
// condition comparisons must be type-correct (numbers compare with
// ordering; strings only with ==/!=). It returns all problems found.
func (c *Catalogue) Check(p *Policy) []error {
	var errs []error
	for _, r := range p.Rules {
		if _, err := c.Lookup(r.Field); err != nil {
			errs = append(errs, fmt.Errorf("rule at line %d: %w", r.Line, err))
		}
		if r.When != nil {
			if err := c.checkExpr(r.When, r.Line); err != nil {
				errs = append(errs, err)
			}
		}
	}
	return errs
}

// checkExpr type-checks a condition; it returns the first error found.
func (c *Catalogue) checkExpr(e Expr, line int) error {
	switch x := e.(type) {
	case *NotExpr:
		return c.checkExpr(x.X, line)
	case *BinaryExpr:
		if x.Op == "and" || x.Op == "or" {
			if err := c.checkExpr(x.Left, line); err != nil {
				return err
			}
			return c.checkExpr(x.Right, line)
		}
		lk, err := c.operandKind(x.Left, line)
		if err != nil {
			return err
		}
		rk, err := c.operandKind(x.Right, line)
		if err != nil {
			return err
		}
		if lk != rk {
			return fmt.Errorf("rule at line %d: comparing %s with %s", line, kindName(lk), kindName(rk))
		}
		if lk == FieldStr && x.Op != "==" && x.Op != "!=" {
			return fmt.Errorf("rule at line %d: strings only compare with == or !=, not %s", line, x.Op)
		}
		return nil
	default:
		return fmt.Errorf("rule at line %d: condition must be a comparison", line)
	}
}

func (c *Catalogue) operandKind(e Expr, line int) (FieldKind, error) {
	switch x := e.(type) {
	case *NumberExpr:
		return FieldNum, nil
	case *StringExpr:
		return FieldStr, nil
	case *FieldExpr:
		entry, err := c.Lookup(x.Ref)
		if err != nil {
			return 0, fmt.Errorf("rule at line %d: %w", line, err)
		}
		return entry.Kind, nil
	default:
		return 0, fmt.Errorf("rule at line %d: boolean sub-expression used as operand", line)
	}
}

func kindName(k FieldKind) string {
	if k == FieldNum {
		return "number"
	}
	return "string"
}
