package transparency

import (
	"strings"
	"testing"
)

func TestRenderUsesCatalogueDescriptions(t *testing.T) {
	pol := MustParse(`policy "acme" {
		disclose requester.hourly_wage to workers always;
	}`)
	out := Render(pol, StandardCatalogue())
	if !strings.Contains(out, "acme") {
		t.Errorf("missing policy name:\n%s", out)
	}
	if !strings.Contains(out, "expected hourly wage") {
		t.Errorf("missing catalogue phrasing:\n%s", out)
	}
	if !strings.Contains(out, "at all times") {
		t.Errorf("missing trigger phrasing:\n%s", out)
	}
}

func TestRenderTriggersAndConditions(t *testing.T) {
	pol := MustParse(`policy "x" {
		disclose task.rejection_criteria to workers on rejection;
		disclose worker.acceptance_ratio to workers when worker.completed >= 10;
	}`)
	out := Render(pol, StandardCatalogue())
	if !strings.Contains(out, "when a contribution is rejected") {
		t.Errorf("rejection trigger missing:\n%s", out)
	}
	if !strings.Contains(out, "provided that") || !strings.Contains(out, "is at least 10") {
		t.Errorf("condition rendering missing:\n%s", out)
	}
}

func TestRenderAudiences(t *testing.T) {
	pol := MustParse(`policy "x" {
		disclose worker.performance to requesters always;
		disclose platform.requester_rating to public always;
	}`)
	out := Render(pol, StandardCatalogue())
	if !strings.Contains(out, "Requesters can see") || !strings.Contains(out, "Everyone can see") {
		t.Errorf("audience phrasing missing:\n%s", out)
	}
}

func TestRenderEmptyPolicy(t *testing.T) {
	out := Render(&Policy{Name: "void"}, StandardCatalogue())
	if !strings.Contains(out, "discloses nothing") {
		t.Errorf("empty policy rendering:\n%s", out)
	}
}

func TestRenderFallsBackForUncataloguedFields(t *testing.T) {
	pol := &Policy{Name: "x", Rules: []*Rule{{
		Field: FieldRef{SubjectWorker, "mystery"},
		To:    AudienceWorkers, On: TriggerAlways,
	}}}
	out := Render(pol, StandardCatalogue())
	if !strings.Contains(out, "worker.mystery") {
		t.Errorf("fallback rendering missing:\n%s", out)
	}
}

func TestRenderBooleanConditions(t *testing.T) {
	pol := MustParse(`policy "x" {
		disclose task.reward to workers when not (task.reward > 5) and worker.consent == "granted";
	}`)
	out := Render(pol, StandardCatalogue())
	for _, phrase := range []string{"it is not the case that", "is above 5", `is "granted"`} {
		if !strings.Contains(out, phrase) {
			t.Errorf("missing %q in:\n%s", phrase, out)
		}
	}
}
