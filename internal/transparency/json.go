package transparency

import (
	"encoding/json"
	"fmt"
)

// JSON interchange for policies. §3.3.2's case for declarative rules is
// that they can be shared and compared across platforms; the DSL is the
// authoring format, and this file provides a structured wire format so
// policies can also travel through APIs and be manipulated by tools that
// do not embed the parser. Parse(p.String()) and DecodePolicy(p.JSON())
// produce the same policy.

// jsonRule is the wire form of Rule.
type jsonRule struct {
	Field string    `json:"field"` // "subject.field"
	To    Audience  `json:"to"`
	On    Trigger   `json:"on"`
	When  *jsonExpr `json:"when,omitempty"`
}

// jsonExpr is the wire form of Expr, a tagged union.
type jsonExpr struct {
	Op    string    `json:"op"`             // "and","or","not", comparison ops, "field","num","str"
	Left  *jsonExpr `json:"left,omitempty"` // binary/unary operands
	Right *jsonExpr `json:"right,omitempty"`
	Field string    `json:"field,omitempty"` // for op=="field"
	Num   float64   `json:"num,omitempty"`   // for op=="num"
	Str   string    `json:"str,omitempty"`   // for op=="str"
}

// jsonPolicy is the wire form of Policy.
type jsonPolicy struct {
	Name  string      `json:"name"`
	Rules []*jsonRule `json:"rules"`
}

// MarshalJSON implements json.Marshaler.
func (p *Policy) MarshalJSON() ([]byte, error) {
	jp := jsonPolicy{Name: p.Name}
	for _, r := range p.Rules {
		jr := &jsonRule{Field: r.Field.String(), To: r.To, On: r.On}
		if r.When != nil {
			je, err := exprToJSON(r.When)
			if err != nil {
				return nil, err
			}
			jr.When = je
		}
		jp.Rules = append(jp.Rules, jr)
	}
	return json.Marshal(jp)
}

// UnmarshalJSON implements json.Unmarshaler with full validation (subjects,
// audiences, triggers, expression structure).
func (p *Policy) UnmarshalJSON(data []byte) error {
	var jp jsonPolicy
	if err := json.Unmarshal(data, &jp); err != nil {
		return fmt.Errorf("transparency: policy json: %w", err)
	}
	if jp.Name == "" {
		return fmt.Errorf("transparency: policy json: empty name")
	}
	out := Policy{Name: jp.Name}
	for i, jr := range jp.Rules {
		ref, err := parseFieldRefString(jr.Field)
		if err != nil {
			return fmt.Errorf("transparency: policy json: rule %d: %w", i, err)
		}
		if !validAudience(jr.To) {
			return fmt.Errorf("transparency: policy json: rule %d: unknown audience %q", i, jr.To)
		}
		on := jr.On
		if on == "" {
			on = TriggerAlways
		}
		if !validTrigger(on) {
			return fmt.Errorf("transparency: policy json: rule %d: unknown trigger %q", i, on)
		}
		r := &Rule{Field: ref, To: jr.To, On: on}
		if jr.When != nil {
			e, err := exprFromJSON(jr.When)
			if err != nil {
				return fmt.Errorf("transparency: policy json: rule %d: %w", i, err)
			}
			r.When = e
		}
		out.Rules = append(out.Rules, r)
	}
	*p = out
	return nil
}

// DecodePolicy parses the JSON wire form of a policy.
func DecodePolicy(data []byte) (*Policy, error) {
	var p Policy
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, err
	}
	return &p, nil
}

// parseFieldRefString splits "subject.field" and validates the subject.
func parseFieldRefString(s string) (FieldRef, error) {
	for i := 0; i < len(s); i++ {
		if s[i] == '.' {
			subj := Subject(s[:i])
			field := s[i+1:]
			if !validSubject(subj) {
				return FieldRef{}, fmt.Errorf("unknown subject %q", subj)
			}
			if field == "" {
				return FieldRef{}, fmt.Errorf("empty field in %q", s)
			}
			return FieldRef{Subject: subj, Field: field}, nil
		}
	}
	return FieldRef{}, fmt.Errorf("field ref %q lacks a '.'", s)
}

func exprToJSON(e Expr) (*jsonExpr, error) {
	switch x := e.(type) {
	case *BinaryExpr:
		l, err := exprToJSON(x.Left)
		if err != nil {
			return nil, err
		}
		r, err := exprToJSON(x.Right)
		if err != nil {
			return nil, err
		}
		return &jsonExpr{Op: x.Op, Left: l, Right: r}, nil
	case *NotExpr:
		inner, err := exprToJSON(x.X)
		if err != nil {
			return nil, err
		}
		return &jsonExpr{Op: "not", Left: inner}, nil
	case *FieldExpr:
		return &jsonExpr{Op: "field", Field: x.Ref.String()}, nil
	case *NumberExpr:
		return &jsonExpr{Op: "num", Num: x.Value}, nil
	case *StringExpr:
		return &jsonExpr{Op: "str", Str: x.Value}, nil
	default:
		return nil, fmt.Errorf("transparency: unknown expression type %T", e)
	}
}

func exprFromJSON(je *jsonExpr) (Expr, error) {
	switch je.Op {
	case "and", "or", "==", "!=", "<", "<=", ">", ">=":
		if je.Left == nil || je.Right == nil {
			return nil, fmt.Errorf("operator %q needs two operands", je.Op)
		}
		l, err := exprFromJSON(je.Left)
		if err != nil {
			return nil, err
		}
		r, err := exprFromJSON(je.Right)
		if err != nil {
			return nil, err
		}
		return &BinaryExpr{Op: je.Op, Left: l, Right: r}, nil
	case "not":
		if je.Left == nil {
			return nil, fmt.Errorf("not needs an operand")
		}
		inner, err := exprFromJSON(je.Left)
		if err != nil {
			return nil, err
		}
		return &NotExpr{X: inner}, nil
	case "field":
		ref, err := parseFieldRefString(je.Field)
		if err != nil {
			return nil, err
		}
		return &FieldExpr{Ref: ref}, nil
	case "num":
		return &NumberExpr{Value: je.Num}, nil
	case "str":
		return &StringExpr{Value: je.Str}, nil
	default:
		return nil, fmt.Errorf("unknown expression op %q", je.Op)
	}
}
