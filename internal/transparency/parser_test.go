package transparency

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

const samplePolicy = `
# Example platform policy.
policy "acme" {
    disclose requester.hourly_wage to workers always;
    disclose requester.payment_delay to workers always;
    disclose task.rejection_criteria to workers on task_view;
    disclose worker.acceptance_ratio to workers when worker.completed >= 10;
    disclose worker.performance to requesters when task.reward > 0.5 and worker.consent == "granted";
    disclose platform.requester_rating to public always;
}
`

func TestParseSample(t *testing.T) {
	pol, err := Parse(samplePolicy)
	if err != nil {
		t.Fatal(err)
	}
	if pol.Name != "acme" {
		t.Fatalf("name = %q", pol.Name)
	}
	if len(pol.Rules) != 6 {
		t.Fatalf("rules = %d", len(pol.Rules))
	}
	r := pol.Rules[3]
	if r.Field != (FieldRef{SubjectWorker, "acceptance_ratio"}) {
		t.Fatalf("rule 3 field = %v", r.Field)
	}
	if r.When == nil {
		t.Fatal("rule 3 condition missing")
	}
	if pol.Rules[2].On != TriggerTaskView {
		t.Fatalf("rule 2 trigger = %v", pol.Rules[2].On)
	}
	if pol.Rules[5].To != AudiencePublic {
		t.Fatalf("rule 5 audience = %v", pol.Rules[5].To)
	}
}

func TestParseRoundTrip(t *testing.T) {
	pol := MustParse(samplePolicy)
	src := pol.String()
	back, err := Parse(src)
	if err != nil {
		t.Fatalf("canonical form does not re-parse: %v\n%s", err, src)
	}
	if back.String() != src {
		t.Fatalf("round trip not a fixed point:\n%s\n%s", src, back.String())
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"missing policy kw": `"x" { }`,
		"missing name":      `policy { }`,
		"empty name":        `policy "" { }`,
		"bad subject":       `policy "x" { disclose alien.field to workers always; }`,
		"bad audience":      `policy "x" { disclose worker.performance to martians always; }`,
		"bad trigger":       `policy "x" { disclose worker.performance to workers on blue_moon; }`,
		"missing semicolon": `policy "x" { disclose worker.performance to workers always }`,
		"single equals":     `policy "x" { disclose worker.performance to workers when worker.completed = 1; }`,
		"unterminated str":  `policy "x`,
		"trailing garbage":  `policy "x" { } extra`,
		"bare boolean":      `policy "x" { disclose worker.performance to workers when worker.completed; }`,
		"unclosed paren":    `policy "x" { disclose worker.performance to workers when (worker.completed > 1; }`,
	}
	for name, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestSyntaxErrorHasPosition(t *testing.T) {
	_, err := Parse("policy \"x\" {\n  disclose alien.f to workers always;\n}")
	var se *SyntaxError
	if !errors.As(err, &se) {
		t.Fatalf("error type = %T", err)
	}
	if se.Line != 2 {
		t.Fatalf("line = %d, want 2", se.Line)
	}
	if !strings.Contains(se.Error(), "2:") {
		t.Fatalf("message lacks position: %s", se)
	}
}

func TestParseComments(t *testing.T) {
	src := `policy "x" { # inline
# full line
disclose task.reward to workers always; # trailing
}`
	pol, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(pol.Rules) != 1 {
		t.Fatalf("rules = %d", len(pol.Rules))
	}
}

func TestParseStringEscapes(t *testing.T) {
	pol, err := Parse(`policy "a\"b\\c" { }`)
	if err != nil {
		t.Fatal(err)
	}
	if pol.Name != `a"b\c` {
		t.Fatalf("name = %q", pol.Name)
	}
	if _, err := Parse(`policy "bad\q" { }`); err == nil {
		t.Error("unknown escape accepted")
	}
}

func TestParsePrecedence(t *testing.T) {
	pol := MustParse(`policy "x" {
		disclose task.reward to workers when task.reward > 1 or task.reward < 0.5 and worker.completed > 3;
	}`)
	// "and" binds tighter than "or": (a or (b and c)).
	top, ok := pol.Rules[0].When.(*BinaryExpr)
	if !ok || top.Op != "or" {
		t.Fatalf("top op = %v", pol.Rules[0].When)
	}
	right, ok := top.Right.(*BinaryExpr)
	if !ok || right.Op != "and" {
		t.Fatalf("right op = %v", top.Right)
	}
}

func TestParseNotAndParens(t *testing.T) {
	pol := MustParse(`policy "x" {
		disclose task.reward to workers when not (task.reward > 1);
	}`)
	if _, ok := pol.Rules[0].When.(*NotExpr); !ok {
		t.Fatalf("expr = %T", pol.Rules[0].When)
	}
}

func TestParseNumbers(t *testing.T) {
	pol := MustParse(`policy "x" {
		disclose task.reward to workers when task.reward >= 1.25;
	}`)
	cmp := pol.Rules[0].When.(*BinaryExpr)
	if num := cmp.Right.(*NumberExpr); num.Value != 1.25 {
		t.Fatalf("number = %v", num.Value)
	}
}

// Generated policies must round-trip through their canonical source.
func TestSyntheticRoundTripProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		pol := randomPolicy(rng)
		src := pol.String()
		back, err := Parse(src)
		if err != nil {
			return false
		}
		return back.String() == src
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// randomPolicy builds a structurally random but well-formed policy.
func randomPolicy(rng *stats.RNG) *Policy {
	cat := StandardCatalogue()
	entries := cat.Entries()
	audiences := []Audience{AudienceWorkers, AudienceRequesters, AudiencePublic}
	triggers := []Trigger{TriggerAlways, TriggerTaskView, TriggerSubmission, TriggerRejection, TriggerPayment, TriggerSignup}
	pol := &Policy{Name: "random"}
	n := 1 + rng.Intn(6)
	for i := 0; i < n; i++ {
		e := entries[rng.Intn(len(entries))]
		r := &Rule{
			Field: e.Ref,
			To:    audiences[rng.Intn(len(audiences))],
			On:    triggers[rng.Intn(len(triggers))],
		}
		if rng.Bool(0.5) {
			r.When = randomExpr(rng, entries, 2)
		}
		pol.Rules = append(pol.Rules, r)
	}
	return pol
}

func randomExpr(rng *stats.RNG, entries []CatalogueEntry, depth int) Expr {
	if depth == 0 || rng.Bool(0.5) {
		e := entries[rng.Intn(len(entries))]
		left := &FieldExpr{Ref: e.Ref}
		if e.Kind == FieldNum {
			ops := []string{"==", "!=", "<", "<=", ">", ">="}
			return &BinaryExpr{Op: ops[rng.Intn(len(ops))], Left: left,
				Right: &NumberExpr{Value: float64(rng.Intn(100)) / 4}}
		}
		ops := []string{"==", "!="}
		return &BinaryExpr{Op: ops[rng.Intn(len(ops))], Left: left,
			Right: &StringExpr{Value: "v"}}
	}
	switch rng.Intn(3) {
	case 0:
		return &NotExpr{X: randomExpr(rng, entries, depth-1)}
	case 1:
		return &BinaryExpr{Op: "and", Left: randomExpr(rng, entries, depth-1), Right: randomExpr(rng, entries, depth-1)}
	default:
		return &BinaryExpr{Op: "or", Left: randomExpr(rng, entries, depth-1), Right: randomExpr(rng, entries, depth-1)}
	}
}
