package transparency

import (
	"errors"
	"fmt"
	"sort"
)

// Value is a runtime field value in a disclosure context.
type Value struct {
	Kind FieldKind
	Num  float64
	Str  string
}

// NumValue returns a numeric Value.
func NumValue(x float64) Value { return Value{Kind: FieldNum, Num: x} }

// StrValue returns a string Value.
func StrValue(s string) Value { return Value{Kind: FieldStr, Str: s} }

// Context carries the concrete field values for one disclosure decision —
// typically one (worker, task, requester) interaction on the platform.
type Context struct {
	values map[FieldRef]Value
}

// NewContext returns an empty context.
func NewContext() *Context {
	return &Context{values: make(map[FieldRef]Value)}
}

// Set binds a field value.
func (c *Context) Set(ref FieldRef, v Value) *Context {
	c.values[ref] = v
	return c
}

// SetNum binds a numeric value by subject/field name.
func (c *Context) SetNum(subject Subject, field string, x float64) *Context {
	return c.Set(FieldRef{subject, field}, NumValue(x))
}

// SetStr binds a string value by subject/field name.
func (c *Context) SetStr(subject Subject, field, s string) *Context {
	return c.Set(FieldRef{subject, field}, StrValue(s))
}

// Get returns the bound value for ref.
func (c *Context) Get(ref FieldRef) (Value, bool) {
	v, ok := c.values[ref]
	return v, ok
}

// Evaluation errors.
var (
	// ErrUnboundField is returned when a condition references a field the
	// context does not bind.
	ErrUnboundField = errors.New("transparency: unbound field in condition")
	// ErrTypeMismatch is returned when a comparison's operand kinds differ
	// at runtime (static checking prevents this for catalogued policies).
	ErrTypeMismatch = errors.New("transparency: type mismatch in condition")
)

// Disclosure is one field a policy requires to be shown in a context.
type Disclosure struct {
	Field FieldRef
	To    Audience
	On    Trigger
	// Value is the context's value for the field if bound.
	Value Value
	// Bound reports whether the context had a value to disclose.
	Bound bool
}

// Evaluate returns the disclosures the policy mandates for the given
// audience and trigger in the given context. Rules with TriggerAlways fire
// on every trigger; "public" rules fire for every audience. Rules whose
// conditions reference unbound fields produce an error — a policy committed
// to disclosing under a condition must be able to evaluate that condition.
func (p *Policy) Evaluate(cat *Catalogue, ctx *Context, aud Audience, trig Trigger) ([]Disclosure, error) {
	var out []Disclosure
	for _, r := range p.Rules {
		if r.To != aud && r.To != AudiencePublic {
			continue
		}
		if r.On != TriggerAlways && r.On != trig {
			continue
		}
		if r.When != nil {
			ok, err := evalExpr(r.When, ctx)
			if err != nil {
				return nil, fmt.Errorf("rule at line %d: %w", r.Line, err)
			}
			if !ok {
				continue
			}
		}
		d := Disclosure{Field: r.Field, To: r.To, On: r.On}
		if v, bound := ctx.Get(r.Field); bound {
			d.Value, d.Bound = v, true
		}
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Field.Subject != out[j].Field.Subject {
			return out[i].Field.Subject < out[j].Field.Subject
		}
		return out[i].Field.Field < out[j].Field.Field
	})
	return out, nil
}

// evalExpr evaluates a condition to a boolean.
func evalExpr(e Expr, ctx *Context) (bool, error) {
	switch x := e.(type) {
	case *NotExpr:
		v, err := evalExpr(x.X, ctx)
		return !v, err
	case *BinaryExpr:
		switch x.Op {
		case "and":
			l, err := evalExpr(x.Left, ctx)
			if err != nil {
				return false, err
			}
			if !l {
				return false, nil
			}
			return evalExpr(x.Right, ctx)
		case "or":
			l, err := evalExpr(x.Left, ctx)
			if err != nil {
				return false, err
			}
			if l {
				return true, nil
			}
			return evalExpr(x.Right, ctx)
		default:
			return evalComparison(x, ctx)
		}
	default:
		return false, fmt.Errorf("%w: condition must be a comparison", ErrTypeMismatch)
	}
}

func evalComparison(e *BinaryExpr, ctx *Context) (bool, error) {
	lv, err := evalOperand(e.Left, ctx)
	if err != nil {
		return false, err
	}
	rv, err := evalOperand(e.Right, ctx)
	if err != nil {
		return false, err
	}
	if lv.Kind != rv.Kind {
		return false, fmt.Errorf("%w: %s vs %s", ErrTypeMismatch, kindName(lv.Kind), kindName(rv.Kind))
	}
	if lv.Kind == FieldStr {
		switch e.Op {
		case "==":
			return lv.Str == rv.Str, nil
		case "!=":
			return lv.Str != rv.Str, nil
		default:
			return false, fmt.Errorf("%w: strings do not support %s", ErrTypeMismatch, e.Op)
		}
	}
	switch e.Op {
	case "==":
		return lv.Num == rv.Num, nil
	case "!=":
		return lv.Num != rv.Num, nil
	case "<":
		return lv.Num < rv.Num, nil
	case "<=":
		return lv.Num <= rv.Num, nil
	case ">":
		return lv.Num > rv.Num, nil
	case ">=":
		return lv.Num >= rv.Num, nil
	default:
		return false, fmt.Errorf("%w: unknown operator %s", ErrTypeMismatch, e.Op)
	}
}

func evalOperand(e Expr, ctx *Context) (Value, error) {
	switch x := e.(type) {
	case *NumberExpr:
		return NumValue(x.Value), nil
	case *StringExpr:
		return StrValue(x.Value), nil
	case *FieldExpr:
		v, ok := ctx.Get(x.Ref)
		if !ok {
			return Value{}, fmt.Errorf("%w: %s", ErrUnboundField, x.Ref)
		}
		return v, nil
	default:
		return Value{}, fmt.Errorf("%w: boolean used as operand", ErrTypeMismatch)
	}
}
