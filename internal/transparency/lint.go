package transparency

import "fmt"

// LintWarning is a non-fatal policy quality finding. Lint complements the
// catalogue Check: Check rejects ill-typed policies, Lint flags policies
// that are valid but misleading — the kind of review a platform would want
// before publishing transparency commitments workers will rely on.
type LintWarning struct {
	// Rule indexes the offending rule in Policy.Rules.
	Rule int
	Msg  string
}

// String renders the warning.
func (w LintWarning) String() string {
	return fmt.Sprintf("rule %d: %s", w.Rule+1, w.Msg)
}

// Lint analyses a policy for redundancy:
//
//   - exact duplicates (same field, audience, trigger, and condition text);
//   - shadowed rules: a rule whose disclosure is implied by a strictly
//     less-restrictive earlier rule for the same field and an audience
//     that covers it (public covers workers and requesters; TriggerAlways
//     covers every trigger; an unconditional rule covers any condition).
//
// Shadowed rules are not wrong, but they overstate a policy's length and
// make comparisons (Compare, TransparencyScore) harder to read.
func Lint(p *Policy) []LintWarning {
	var out []LintWarning
	seen := make(map[string]int)
	for i, r := range p.Rules {
		sig := r.String()
		if first, dup := seen[sig]; dup {
			out = append(out, LintWarning{Rule: i,
				Msg: fmt.Sprintf("duplicate of rule %d", first+1)})
			continue
		}
		seen[sig] = i
		for j := 0; j < i; j++ {
			prev := p.Rules[j]
			if prev.Field != r.Field {
				continue
			}
			if covers(prev, r) {
				out = append(out, LintWarning{Rule: i,
					Msg: fmt.Sprintf("shadowed by less restrictive rule %d (%s)", j+1, prev)})
				break
			}
		}
	}
	return out
}

// covers reports whether rule a discloses at least whenever rule b would.
func covers(a, b *Rule) bool {
	// Audience: a must reach everyone b reaches.
	if a.To != b.To && a.To != AudiencePublic {
		return false
	}
	// Trigger: a must fire whenever b fires.
	if a.On != b.On && a.On != TriggerAlways {
		return false
	}
	// Condition: only an unconditional a is guaranteed to cover b's
	// condition; identical condition text also covers.
	if a.When != nil {
		if b.When == nil {
			return false
		}
		return a.When.exprString() == b.When.exprString()
	}
	return true
}
