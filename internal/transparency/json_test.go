package transparency

import (
	"encoding/json"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func TestPolicyJSONRoundTrip(t *testing.T) {
	pol := MustParse(samplePolicy)
	data, err := json.Marshal(pol)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodePolicy(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.String() != pol.String() {
		t.Fatalf("round trip mismatch:\n%s\n%s", pol, back)
	}
}

func TestPolicyJSONRoundTripProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		pol := randomPolicy(rng)
		data, err := json.Marshal(pol)
		if err != nil {
			return false
		}
		back, err := DecodePolicy(data)
		if err != nil {
			return false
		}
		return back.String() == pol.String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPolicyJSONValidation(t *testing.T) {
	cases := map[string]string{
		"empty name":    `{"name":"","rules":[]}`,
		"bad subject":   `{"name":"x","rules":[{"field":"alien.f","to":"workers","on":"always"}]}`,
		"no dot":        `{"name":"x","rules":[{"field":"nodot","to":"workers","on":"always"}]}`,
		"empty field":   `{"name":"x","rules":[{"field":"worker.","to":"workers","on":"always"}]}`,
		"bad audience":  `{"name":"x","rules":[{"field":"task.reward","to":"martians","on":"always"}]}`,
		"bad trigger":   `{"name":"x","rules":[{"field":"task.reward","to":"workers","on":"blue_moon"}]}`,
		"bad expr op":   `{"name":"x","rules":[{"field":"task.reward","to":"workers","on":"always","when":{"op":"xor"}}]}`,
		"unary missing": `{"name":"x","rules":[{"field":"task.reward","to":"workers","on":"always","when":{"op":"not"}}]}`,
		"binary one-op": `{"name":"x","rules":[{"field":"task.reward","to":"workers","on":"always","when":{"op":"==","left":{"op":"num","num":1}}}]}`,
		"not json":      `nope`,
	}
	for name, src := range cases {
		if _, err := DecodePolicy([]byte(src)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestPolicyJSONDefaultTrigger(t *testing.T) {
	src := `{"name":"x","rules":[{"field":"task.reward","to":"workers"}]}`
	pol, err := DecodePolicy([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if pol.Rules[0].On != TriggerAlways {
		t.Fatalf("default trigger = %v", pol.Rules[0].On)
	}
}

func TestPolicyJSONConditionSemantics(t *testing.T) {
	// The JSON form must evaluate identically to the parsed form.
	pol := MustParse(`policy "x" {
		disclose task.reward to workers when task.reward > 1 and not (worker.completed < 5);
	}`)
	data, err := json.Marshal(pol)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodePolicy(data)
	if err != nil {
		t.Fatal(err)
	}
	cat := StandardCatalogue()
	ctx := NewContext().
		SetNum(SubjectTask, "reward", 2).
		SetNum(SubjectWorker, "completed", 7)
	a, err := pol.Evaluate(cat, ctx, AudienceWorkers, TriggerTaskView)
	if err != nil {
		t.Fatal(err)
	}
	b, err := back.Evaluate(cat, ctx, AudienceWorkers, TriggerTaskView)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) || len(a) != 1 {
		t.Fatalf("evaluation mismatch: %v vs %v", a, b)
	}
}
