// Package transparency implements the declarative transparency language the
// paper advocates in §3.3.2: "a declarative high-level language to specify
// fairness rules ... used by requesters to disclose task requirements,
// recruitment criteria, evaluation scheme, and payment schedule. Platform
// designers can use these rules to disclose relevant information ... Rules
// can also be translated into human-readable descriptions ... the
// declarative nature of those rules will allow easy comparison across
// platforms."
//
// The language is a small rule DSL:
//
//	policy "acme" {
//	    disclose requester.hourly_wage to workers always;
//	    disclose requester.rejection_criteria to workers on task_view;
//	    disclose platform.acceptance_ratio to workers when worker.completed >= 10;
//	    disclose worker.performance to requesters when task.reward > 0.5 and worker.consent == "granted";
//	}
//
// The package provides the full pipeline: lexer (this file), parser and AST
// (ast.go, parser.go), static checking against the disclosure catalogue
// (check.go), evaluation against a disclosure context (eval.go), rendering
// to human-readable text (render.go), compliance auditing of event traces
// including Axioms 6 and 7 (compliance.go), and policy comparison
// (compare.go).
package transparency

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind discriminates lexical tokens.
type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokString
	tokNumber
	tokLBrace
	tokRBrace
	tokLParen
	tokRParen
	tokSemi
	tokDot
	tokOp // comparison operators: == != <= >= < >
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokString:
		return "string"
	case tokNumber:
		return "number"
	case tokLBrace:
		return "'{'"
	case tokRBrace:
		return "'}'"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokSemi:
		return "';'"
	case tokDot:
		return "'.'"
	case tokOp:
		return "operator"
	default:
		return fmt.Sprintf("token(%d)", uint8(k))
	}
}

// token is one lexical unit with its source position.
type token struct {
	kind tokenKind
	text string
	line int
	col  int
}

// SyntaxError reports a lexical or grammatical problem with a policy source.
type SyntaxError struct {
	Line, Col int
	Msg       string
}

// Error implements error.
func (e *SyntaxError) Error() string {
	return fmt.Sprintf("transparency: %d:%d: %s", e.Line, e.Col, e.Msg)
}

// lexer converts policy source to tokens.
type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1, col: 1} }

func (l *lexer) errf(format string, args ...any) *SyntaxError {
	return &SyntaxError{Line: l.line, Col: l.col, Msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) peek() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

// next returns the next token.
func (l *lexer) next() (token, error) {
	// Skip whitespace and comments (# to end of line).
	for l.pos < len(l.src) {
		c := l.peek()
		switch {
		case c == '#':
			for l.pos < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case unicode.IsSpace(rune(c)):
			l.advance()
		default:
			goto lexed
		}
	}
lexed:
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, line: l.line, col: l.col}, nil
	}
	line, col := l.line, l.col
	c := l.peek()
	switch {
	case c == '{':
		l.advance()
		return token{tokLBrace, "{", line, col}, nil
	case c == '}':
		l.advance()
		return token{tokRBrace, "}", line, col}, nil
	case c == '(':
		l.advance()
		return token{tokLParen, "(", line, col}, nil
	case c == ')':
		l.advance()
		return token{tokRParen, ")", line, col}, nil
	case c == ';':
		l.advance()
		return token{tokSemi, ";", line, col}, nil
	case c == '.':
		l.advance()
		return token{tokDot, ".", line, col}, nil
	case c == '"':
		return l.lexString(line, col)
	case c == '=' || c == '!' || c == '<' || c == '>':
		return l.lexOp(line, col)
	case unicode.IsDigit(rune(c)):
		return l.lexNumber(line, col)
	case unicode.IsLetter(rune(c)) || c == '_':
		return l.lexIdent(line, col)
	default:
		return token{}, l.errf("unexpected character %q", c)
	}
}

func (l *lexer) lexString(line, col int) (token, error) {
	l.advance() // opening quote
	var b strings.Builder
	for {
		if l.pos >= len(l.src) {
			return token{}, l.errf("unterminated string")
		}
		c := l.advance()
		if c == '"' {
			return token{tokString, b.String(), line, col}, nil
		}
		if c == '\\' {
			if l.pos >= len(l.src) {
				return token{}, l.errf("unterminated escape")
			}
			e := l.advance()
			switch e {
			case '"', '\\':
				b.WriteByte(e)
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			default:
				return token{}, l.errf("unknown escape \\%c", e)
			}
			continue
		}
		if c == '\n' {
			return token{}, l.errf("newline in string")
		}
		b.WriteByte(c)
	}
}

func (l *lexer) lexOp(line, col int) (token, error) {
	c := l.advance()
	if l.pos < len(l.src) && l.peek() == '=' {
		l.advance()
		return token{tokOp, string(c) + "=", line, col}, nil
	}
	switch c {
	case '<', '>':
		return token{tokOp, string(c), line, col}, nil
	case '=':
		return token{}, l.errf("single '=' is not an operator; use '=='")
	default: // '!'
		return token{}, l.errf("single '!' is not an operator; use '!='")
	}
}

func (l *lexer) lexNumber(line, col int) (token, error) {
	start := l.pos
	seenDot := false
	for l.pos < len(l.src) {
		c := l.peek()
		if c == '.' {
			if seenDot {
				break
			}
			// A trailing dot (e.g. "3.") requires a following digit.
			if l.pos+1 >= len(l.src) || !unicode.IsDigit(rune(l.src[l.pos+1])) {
				break
			}
			seenDot = true
			l.advance()
			continue
		}
		if !unicode.IsDigit(rune(c)) {
			break
		}
		l.advance()
	}
	return token{tokNumber, l.src[start:l.pos], line, col}, nil
}

func (l *lexer) lexIdent(line, col int) (token, error) {
	start := l.pos
	for l.pos < len(l.src) {
		c := rune(l.peek())
		if !unicode.IsLetter(c) && !unicode.IsDigit(c) && c != '_' {
			break
		}
		l.advance()
	}
	return token{tokIdent, l.src[start:l.pos], line, col}, nil
}
