package transparency

import (
	"strings"
	"testing"

	"repro/internal/eventlog"
)

// compliantLog builds a trace where requester r1 and task t1 disclose all
// Axiom-6 fields and worker w1 receives all Axiom-7 fields.
func compliantLog() *eventlog.Log {
	l := eventlog.New()
	l.MustAppend(eventlog.Event{Time: 1, Type: eventlog.WorkerJoined, Worker: "w1"})
	l.MustAppend(eventlog.Event{Time: 2, Type: eventlog.TaskPosted, Task: "t1", Requester: "r1"})
	for _, f := range []string{"requester.hourly_wage", "requester.payment_delay"} {
		l.MustAppend(eventlog.Event{Time: 3, Type: eventlog.Disclosure, Requester: "r1", Field: f})
	}
	for _, f := range []string{"task.recruitment_criteria", "task.rejection_criteria"} {
		l.MustAppend(eventlog.Event{Time: 4, Type: eventlog.Disclosure, Task: "t1", Requester: "r1", Field: f})
	}
	for _, f := range []string{"worker.performance", "worker.acceptance_ratio"} {
		l.MustAppend(eventlog.Event{Time: 5, Type: eventlog.Disclosure, Worker: "w1", Field: f})
	}
	return l
}

func TestAxiom6Satisfied(t *testing.T) {
	rep := CheckAxiom6(StandardCatalogue(), compliantLog())
	if !rep.Satisfied() {
		t.Fatalf("compliant trace failed: %v / %v", rep.Missing, rep.Detail)
	}
	if len(rep.Required) != 4 {
		t.Fatalf("required = %v", rep.Required)
	}
}

func TestAxiom6DetectsMissingRequesterField(t *testing.T) {
	l := eventlog.New()
	l.MustAppend(eventlog.Event{Time: 1, Type: eventlog.TaskPosted, Task: "t1", Requester: "r1"})
	l.MustAppend(eventlog.Event{Time: 2, Type: eventlog.Disclosure, Requester: "r1", Field: "requester.hourly_wage"})
	rep := CheckAxiom6(StandardCatalogue(), l)
	if rep.Satisfied() {
		t.Fatal("missing disclosures passed")
	}
	// payment_delay plus both task fields missing.
	if len(rep.Missing) != 3 {
		t.Fatalf("missing = %v", rep.Missing)
	}
	foundDetail := false
	for _, d := range rep.Detail {
		if strings.Contains(d, "payment_delay") {
			foundDetail = true
		}
	}
	if !foundDetail {
		t.Fatalf("detail lacks field name: %v", rep.Detail)
	}
}

func TestAxiom6PerTaskGranularity(t *testing.T) {
	l := compliantLog()
	// A second task with no disclosures must re-trip the axiom.
	l.MustAppend(eventlog.Event{Time: 6, Type: eventlog.TaskPosted, Task: "t2", Requester: "r1"})
	rep := CheckAxiom6(StandardCatalogue(), l)
	if rep.Satisfied() {
		t.Fatal("undisclosed second task passed")
	}
}

func TestAxiom7Satisfied(t *testing.T) {
	rep := CheckAxiom7(StandardCatalogue(), compliantLog())
	if !rep.Satisfied() {
		t.Fatalf("compliant trace failed: %v", rep.Detail)
	}
}

func TestAxiom7DetectsUndisclosedWorker(t *testing.T) {
	l := compliantLog()
	l.MustAppend(eventlog.Event{Time: 7, Type: eventlog.WorkerJoined, Worker: "w2"})
	rep := CheckAxiom7(StandardCatalogue(), l)
	if rep.Satisfied() {
		t.Fatal("undisclosed worker passed")
	}
	if len(rep.Missing) != 2 {
		t.Fatalf("missing = %v", rep.Missing)
	}
}

func TestAxiom7CountsActiveWorkers(t *testing.T) {
	// A worker that only appears via TaskStarted still counts.
	l := eventlog.New()
	l.MustAppend(eventlog.Event{Time: 1, Type: eventlog.TaskStarted, Worker: "ghost", Task: "t1"})
	rep := CheckAxiom7(StandardCatalogue(), l)
	if rep.Satisfied() {
		t.Fatal("active-but-unjoined worker ignored")
	}
}

func TestEmptyTraceVacuouslyCompliant(t *testing.T) {
	l := eventlog.New()
	if rep := CheckAxiom6(StandardCatalogue(), l); !rep.Satisfied() {
		t.Fatal("empty trace fails Axiom 6")
	}
	if rep := CheckAxiom7(StandardCatalogue(), l); !rep.Satisfied() {
		t.Fatal("empty trace fails Axiom 7")
	}
}

func TestPolicyCompliance(t *testing.T) {
	pol := MustParse(`policy "x" {
		disclose requester.hourly_wage to workers always;
	}`)
	l := eventlog.New()
	l.MustAppend(eventlog.Event{Time: 1, Type: eventlog.WorkerJoined, Worker: "w1"})
	gaps := PolicyCompliance(pol, l)
	if len(gaps) != 1 || !strings.Contains(gaps[0], "hourly_wage") {
		t.Fatalf("gaps = %v", gaps)
	}
	l.MustAppend(eventlog.Event{Time: 2, Type: eventlog.Disclosure, Worker: "w1", Field: "requester.hourly_wage"})
	if gaps := PolicyCompliance(pol, l); len(gaps) != 0 {
		t.Fatalf("satisfied policy has gaps: %v", gaps)
	}
}

func TestPolicyComplianceSkipsConditionalRules(t *testing.T) {
	pol := MustParse(`policy "x" {
		disclose worker.performance to workers when worker.completed >= 5;
		disclose task.reward to workers on task_view;
	}`)
	l := eventlog.New()
	l.MustAppend(eventlog.Event{Time: 1, Type: eventlog.WorkerJoined, Worker: "w1"})
	if gaps := PolicyCompliance(pol, l); len(gaps) != 0 {
		t.Fatalf("conditional/triggered rules audited: %v", gaps)
	}
}

func TestAxiomReportString(t *testing.T) {
	rep := CheckAxiom6(StandardCatalogue(), eventlog.New())
	if !strings.Contains(rep.String(), "Axiom 6") {
		t.Fatalf("report string = %q", rep.String())
	}
}
