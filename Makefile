GO ?= go

.PHONY: all build test test-race vet fmt-check bench sweep clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

bench:
	$(GO) test -bench=. -benchmem -run '^$$' .

# Quick demonstration of the parallel sweep engine.
sweep:
	$(GO) run ./cmd/benchrunner -sweep all -seeds 1,2 -scales 0.25

clean:
	$(GO) clean ./...
