GO ?= go

.PHONY: all build test test-race test-shuffle vet lint fmt-check bench bench-store bench-wal bench-reshard bench-lsh bench-audit bench-serve sweep clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

test-shuffle:
	$(GO) test -shuffle=on ./...

vet:
	$(GO) vet ./...

# Static analysis beyond vet. staticcheck is not vendored: when the binary
# is absent (e.g. a hermetic container) the target degrades to vet-only
# with a notice instead of failing; CI installs it on the runner.
lint:
	$(GO) vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not found; ran go vet only (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

bench:
	$(GO) test -bench=. -benchmem -run '^$$' .

# Contended sharded-store benchmarks: single-RWMutex baseline vs hash
# shards under 8 mutator goroutines (with and without a live auditor).
bench-store:
	$(GO) test -bench 'StoreContended' -benchmem -run '^$$' .
	$(GO) run ./cmd/benchrunner -storebench

# WAL persistence benchmarks: segmented-log append throughput per fsync
# policy, the group-commit sweep (appender concurrency × sync policy,
# written to BENCH_wal.json), recovery time vs trace length, and warm vs
# cold first-audit latency (with a built-in warm==cold determinism check).
bench-wal:
	$(GO) run ./cmd/benchrunner -walbench -walout BENCH_wal.json

# Epoch-routed store benchmarks: mutation latency during a live shard
# split under concurrent writers, and WAL-shipping replica staleness vs
# write rate with catch-up time once writes stop.
bench-reshard:
	$(GO) run ./cmd/benchrunner -reshardbench

# Candidate-generation benchmarks: exact inverted-index vs MinHash/LSH
# pruning, cold first-audit latency and incremental churn, written to
# BENCH_lsh.json. The 1M-worker point runs LSH only (exact is gated).
bench-lsh:
	$(GO) run ./cmd/benchrunner -lshbench -lshout BENCH_lsh.json

# Parallel audit pipeline benchmarks: cold and delta audit latency over
# population size × dirty fraction × worker-pool width, written to
# BENCH_audit.json. Every pool width replays the same trace and the sweep
# fails if any width's reports diverge from the serial baseline.
bench-audit:
	$(GO) run ./cmd/benchrunner -auditbench -auditout BENCH_audit.json

# Online-serving benchmarks: closed-loop latency over a durable WAL-backed
# server at several concurrencies, a concurrent-vs-serial-oracle audit
# determinism double-run, an overload cell (429 shedding with bounded
# admitted p99), and a binary search for the max SLO-clean open-loop rate,
# written to BENCH_serve.json.
bench-serve:
	$(GO) run ./cmd/benchrunner -servebench -serveout BENCH_serve.json

# Quick demonstration of the parallel sweep engine.
sweep:
	$(GO) run ./cmd/benchrunner -sweep all -seeds 1,2 -scales 0.25

clean:
	$(GO) clean ./...
