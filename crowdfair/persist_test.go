package crowdfair

import (
	"fmt"
	"testing"

	"repro/internal/similarity"
)

// TestAuditIncrementalReusesEngineWithCustomAttrPolicy is the regression
// test for the sameAttrPolicy fix: a config with per-field tolerance
// overrides and an ignore set must reuse the warmed engine across
// AuditIncremental calls instead of silently cold-starting every time.
func TestAuditIncrementalReusesEngineWithCustomAttrPolicy(t *testing.T) {
	p := demoPlatform(t)
	cfg := DefaultAuditConfig()
	ap := similarity.AttrPolicy{
		NumTolerance:   0.1,
		FieldTolerance: map[string]float64{"acceptance_ratio": 0.25},
		IgnoreFields:   map[string]bool{"internal_id": true},
	}
	cfg.AttrPolicy = &ap
	p.AuditIncremental(cfg)
	first := p.auditor
	if first == nil {
		t.Fatal("no engine after first audit")
	}
	// Re-audit with a semantically identical but distinct config value.
	cfg2 := DefaultAuditConfig()
	ap2 := similarity.AttrPolicy{
		NumTolerance:   0.1,
		FieldTolerance: map[string]float64{"acceptance_ratio": 0.25},
		IgnoreFields:   map[string]bool{"internal_id": true, "noise": false},
	}
	cfg2.AttrPolicy = &ap2
	p.AuditIncremental(cfg2)
	if p.auditor != first {
		t.Fatal("identical custom attribute policy cold-started the incremental auditor")
	}
	// A genuinely different policy must still reset the engine.
	cfg3 := DefaultAuditConfig()
	ap3 := similarity.AttrPolicy{
		NumTolerance:   0.1,
		FieldTolerance: map[string]float64{"acceptance_ratio": 0.5},
	}
	cfg3.AttrPolicy = &ap3
	p.AuditIncremental(cfg3)
	if p.auditor == first {
		t.Fatal("changed attribute policy reused the old engine")
	}
}

// TestOpenPlatformRoundTrip drives the durable public API end to end:
// build a platform, audit, checkpoint, reopen, and check both the state
// and that the auditor warm-started.
func TestOpenPlatformRoundTrip(t *testing.T) {
	dir := t.TempDir()
	u := NewUniverse("translation", "labeling")
	cfg := DefaultAuditConfig()
	p, err := OpenPlatform(dir, u, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Durable() {
		t.Fatal("platform not durable")
	}
	if err := p.AddRequester(&Requester{ID: "r1"}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		w := &Worker{
			ID:       WorkerID(fmt.Sprintf("w%d", i)),
			Declared: Attributes{"country": Str("jp")},
			Computed: Attributes{"acceptance_ratio": Num(0.9)},
			Skills:   u.MustVector("labeling"),
		}
		if err := p.AddWorker(w); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		task := &Task{ID: TaskID(fmt.Sprintf("t%d", i)), Requester: "r1", Skills: u.MustVector("labeling"), Reward: 1}
		if err := p.PostTask(task); err != nil {
			t.Fatal(err)
		}
		if err := p.Offer(task.ID, WorkerID(fmt.Sprintf("w%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	want := p.AuditIncremental(cfg)
	if err := p.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	p2, err := OpenPlatform(dir, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if p2.auditor == nil {
		t.Fatal("auditor did not warm-start from the checkpoint")
	}
	if n := p2.Store().WorkerCount(); n != 8 {
		t.Fatalf("recovered %d workers", n)
	}
	if n := p2.Log().Len(); n != p.Log().Len() {
		t.Fatalf("recovered %d events, want %d", n, p.Log().Len())
	}
	got := p2.AuditIncremental(cfg)
	if len(got) != len(want) {
		t.Fatalf("report count %d", len(got))
	}
	for i := range got {
		if got[i].Checked != want[i].Checked || len(got[i].Violations) != len(want[i].Violations) {
			t.Fatalf("%s: warm reports diverge: checked %d/%d violations %d/%d",
				got[i].Axiom, got[i].Checked, want[i].Checked,
				len(got[i].Violations), len(want[i].Violations))
		}
	}
	// Mutating after recovery keeps persisting: a third open sees it.
	if err := p2.AddWorker(&Worker{ID: "wz", Skills: u.MustVector("translation")}); err != nil {
		t.Fatal(err)
	}
	if err := p2.Close(); err != nil {
		t.Fatal(err)
	}
	p3, err := OpenPlatform(dir, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p3.Close()
	if n := p3.Store().WorkerCount(); n != 9 {
		t.Fatalf("third open: %d workers", n)
	}
}

// TestOpenPlatformConfigMismatchColdStarts pins the safety net: audit
// state saved under one config must not warm-start an auditor under a
// different one.
func TestOpenPlatformConfigMismatchColdStarts(t *testing.T) {
	dir := t.TempDir()
	u := NewUniverse("translation", "labeling")
	cfg := DefaultAuditConfig()
	p, err := OpenPlatform(dir, u, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.AddRequester(&Requester{ID: "r1"}); err != nil {
		t.Fatal(err)
	}
	if err := p.AddWorker(&Worker{ID: "w1", Skills: u.MustVector("labeling")}); err != nil {
		t.Fatal(err)
	}
	p.AuditIncremental(cfg)
	if err := p.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	other := DefaultAuditConfig()
	other.SkillThreshold = 0.5
	p2, err := OpenPlatform(dir, nil, other)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if p2.auditor != nil {
		t.Fatal("mismatched config warm-started the auditor")
	}
	// And the cold start still works.
	if reports := p2.AuditIncremental(other); len(reports) != 5 {
		t.Fatalf("cold audit returned %d reports", len(reports))
	}
}

func TestLoadTraceRefusedOnDurablePlatform(t *testing.T) {
	dir := t.TempDir()
	u := NewUniverse("labeling")
	p, err := OpenPlatform(dir, u, DefaultAuditConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if err := p.LoadTrace(nil); err == nil {
		t.Fatal("LoadTrace succeeded on a durable platform")
	}
}
