// Package crowdfair is the public API of this repository: a framework for
// checking and enforcing fairness and transparency in crowdsourcing
// platforms, implementing Borromeo, Laurent, Toyama & Amer-Yahia,
// "Fairness and Transparency in Crowdsourcing" (EDBT 2017).
//
// The package wraps the internal subsystems behind a Platform type:
//
//	u := crowdfair.NewUniverse("translation", "labeling")
//	p := crowdfair.NewPlatform(u)
//	p.AddRequester(&crowdfair.Requester{ID: "r1"})
//	p.AddWorker(&crowdfair.Worker{ID: "w1", Skills: u.MustVector("labeling")})
//	...
//	reports := p.AuditFairness(crowdfair.DefaultAuditConfig())
//
// Transparency policies are authored in the declarative language of the
// paper's §3.3.2 (see ParsePolicy), rendered to human-readable text, and
// audited against the platform's event trace. Full marketplace simulations
// (the controlled experiments of §4.1) run through Simulate.
package crowdfair

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"repro/internal/audit"
	"repro/internal/eventlog"
	"repro/internal/fairness"
	"repro/internal/model"
	"repro/internal/similarity"
	"repro/internal/store"
	"repro/internal/transparency"
	"repro/internal/wal"
)

// Re-exported model types: the platform data model of the paper's §3.2.
type (
	// Worker is the tuple (id, declared attrs, computed attrs, skills).
	Worker = model.Worker
	// Task is the tuple (id, requester, required skills, reward).
	Task = model.Task
	// Requester publishes tasks.
	Requester = model.Requester
	// Contribution is a worker's submitted answer with its outcome.
	Contribution = model.Contribution
	// Universe is the shared skill-keyword space S.
	Universe = model.Universe
	// SkillVector is the Boolean skill vector of tasks and workers.
	SkillVector = model.SkillVector
	// Attributes holds declared or computed worker attributes.
	Attributes = model.Attributes

	// WorkerID, TaskID, RequesterID, ContributionID identify entities.
	WorkerID       = model.WorkerID
	TaskID         = model.TaskID
	RequesterID    = model.RequesterID
	ContributionID = model.ContributionID
)

// Re-exported audit types.
type (
	// FairnessReport is the outcome of checking one fairness axiom.
	FairnessReport = fairness.Report
	// Violation is one audited axiom failure.
	Violation = fairness.Violation
	// AuditConfig parameterises the fairness checkers (similarity measures
	// and thresholds, per the paper's platform-dependent notion).
	AuditConfig = fairness.Config
	// TransparencyReport is the outcome of checking Axiom 6 or 7.
	TransparencyReport = transparency.AxiomReport
	// Policy is a parsed declarative transparency policy.
	Policy = transparency.Policy
	// Catalogue is the schema of disclosable fields.
	Catalogue = transparency.Catalogue
	// Event is one platform trace record.
	Event = eventlog.Event
)

// Attribute constructors, re-exported.
var (
	// Num builds a numeric attribute value.
	Num = model.Num
	// Str builds a categorical attribute value.
	Str = model.Str
)

// Re-exported write-ahead log tuning — internal/wal is unimportable by
// consumers, so durable platforms configure persistence through these.
type (
	// WALOptions parameterises a durable platform's write-ahead logs
	// (segment size, sync policy).
	WALOptions = wal.Options
	// SyncPolicy selects when the logs fsync; see the Sync* values and
	// SyncInterval.
	SyncPolicy = wal.SyncPolicy
)

// Sync policies for WALOptions.Sync, weakest to strongest. SyncAlways and
// SyncInterval commit through per-shard group commit: one fsync covers
// every append queued while the previous fsync ran, so durable throughput
// stays within small-integer multiples of SyncNever under concurrency.
var (
	// SyncNever leaves flushing to the OS: a process crash loses nothing,
	// a power failure loses the unsynced tail.
	SyncNever = wal.SyncNever
	// SyncOnRotate fsyncs each segment as it is sealed.
	SyncOnRotate = wal.SyncOnRotate
	// SyncAlways acks each mutation only after a covering group fsync.
	SyncAlways = wal.SyncAlways
	// SyncInterval(d) acks immediately and fsyncs the accumulated tail
	// every d: a crash loses at most the last d of acknowledged writes.
	SyncInterval = wal.SyncInterval
	// ParseSyncPolicy parses "never", "rotate", "interval[:<dur>]", or
	// "always" — the flag/config syntax.
	ParseSyncPolicy = wal.ParseSyncPolicy
)

// NewUniverse builds the skill universe; it panics on empty input (use
// model.NewUniverse directly for error handling).
func NewUniverse(skills ...string) *Universe { return model.MustUniverse(skills...) }

// DefaultAuditConfig returns the checker configuration used by the paper
// experiments: cosine skill similarity at 0.9, tolerant attribute matching,
// identical-access requirement, n-gram/nDCG contribution similarity at 0.8.
func DefaultAuditConfig() AuditConfig { return fairness.DefaultConfig() }

// Platform is a crowdsourcing platform under audit: entity state plus the
// append-only event trace the temporal axioms need. Platforms built with
// NewPlatform live purely in memory; OpenPlatform roots one in a directory
// whose store changelog and event trace are teed into segmented
// write-ahead logs, checkpointable with Checkpoint and recoverable —
// including the incremental auditor's warm state — by a later
// OpenPlatform over the same directory.
type Platform struct {
	st  *store.Store
	log *eventlog.Log

	// dir is the persistence root ("" for in-memory platforms).
	dir string

	// auditor is the lazily-created incremental audit engine; it is pinned
	// to the config of the first AuditIncremental call (or resumed from a
	// checkpoint by OpenPlatform) and discarded when the trace is replaced
	// (LoadTrace) or the config changes.
	auditor    *audit.Engine
	auditorCfg AuditConfig
}

// NewPlatform returns an empty in-memory platform over the universe.
func NewPlatform(u *Universe) *Platform {
	return &Platform{st: store.New(u), log: eventlog.New()}
}

// OpenPlatform opens the durable platform rooted at dir, creating it over
// the universe u when the directory holds no platform yet. Recovery
// rebuilds the store from its last checkpoint plus the write-ahead tail
// (surviving torn final records) and replays the persisted event trace;
// if the checkpoint carries auditor state saved under a config matching
// cfg, the incremental auditor warm-starts — its first AuditIncremental
// replays only post-checkpoint deltas instead of re-scanning every pair.
func OpenPlatform(dir string, u *Universe, cfg AuditConfig) (*Platform, error) {
	return OpenPlatformWAL(dir, u, cfg, WALOptions{})
}

// OpenPlatformWAL is OpenPlatform with explicit write-ahead log tuning:
// wopts.Sync selects the durability/throughput trade (SyncNever,
// SyncOnRotate, SyncInterval, SyncAlways) for both the store changelog and
// the event trace, and wopts.SegmentBytes the rotation threshold. The
// policy is an open-time property, not a stored one — the same directory
// may be reopened under a different policy.
func OpenPlatformWAL(dir string, u *Universe, cfg AuditConfig, wopts WALOptions) (*Platform, error) {
	if !store.Exists(dir) {
		if u == nil {
			return nil, fmt.Errorf("crowdfair: creating %s needs a universe", dir)
		}
		st, err := store.NewDurable(u, store.DefaultShardCount, dir, wopts)
		if err != nil {
			return nil, err
		}
		log, err := eventlog.OpenDurable(store.EventsDir(dir), wopts)
		if err != nil {
			return nil, err
		}
		return &Platform{st: st, log: log, dir: dir, auditorCfg: cfg}, nil
	}
	st, man, err := store.Open(dir, 0, wopts)
	if err != nil {
		return nil, err
	}
	log, err := eventlog.OpenDurable(store.EventsDir(dir), wopts)
	if err != nil {
		return nil, err
	}
	p := &Platform{st: st, log: log, dir: dir, auditorCfg: cfg}
	if len(man.Audit) > 0 {
		var state audit.State
		if err := json.Unmarshal(man.Audit, &state); err == nil &&
			state.ConfigSig == audit.ConfigSig(cfg) {
			// A failed resume (e.g. the store reopened at a different shard
			// width) is not an error — the first AuditIncremental simply
			// cold-starts.
			if eng, err := audit.Resume(st, log, cfg, &state); err == nil {
				p.auditor = eng
			}
		}
	}
	return p, nil
}

// Durable reports whether the platform persists its trace.
func (p *Platform) Durable() bool { return p.dir != "" }

// Checkpoint writes a recovery point under the platform's directory: the
// store snapshot, the manifest (including the incremental auditor's warm
// state, when one exists), and truncates write-ahead segments both the
// snapshot and the auditor have passed. Only durable platforms checkpoint.
func (p *Platform) Checkpoint() error {
	if p.dir == "" {
		return fmt.Errorf("crowdfair: checkpoint of an in-memory platform (use OpenPlatform)")
	}
	o, err := audit.BuildCheckpointOptions(p.auditor, p.auditorCfg, p.log.Len())
	if err != nil {
		return fmt.Errorf("crowdfair: %w", err)
	}
	if err := p.log.Sync(); err != nil {
		return err
	}
	_, err = p.st.Checkpoint(o)
	return err
}

// Close flushes and closes the platform's write-ahead logs. The in-memory
// state stays readable; further mutations are no longer persisted.
func (p *Platform) Close() error {
	return errors.Join(p.st.Close(), p.log.Close())
}

// AddWorker registers a worker and logs their arrival.
func (p *Platform) AddWorker(w *Worker) error {
	if err := p.st.PutWorker(w); err != nil {
		return err
	}
	p.log.MustAppend(eventlog.Event{Time: p.now(), Type: eventlog.WorkerJoined, Worker: w.ID})
	return nil
}

// AddRequester registers a requester.
func (p *Platform) AddRequester(r *Requester) error { return p.st.PutRequester(r) }

// PostTask publishes a task and logs TaskPosted.
func (p *Platform) PostTask(t *Task) error {
	if err := p.st.PutTask(t); err != nil {
		return err
	}
	p.log.MustAppend(eventlog.Event{Time: p.now(), Type: eventlog.TaskPosted, Task: t.ID, Requester: t.Requester})
	return nil
}

// Offer records that a task was made visible to a worker — the access
// evidence Axioms 1 and 2 audit.
func (p *Platform) Offer(task TaskID, worker WorkerID) error {
	t, err := p.st.Task(task)
	if err != nil {
		return err
	}
	if _, err := p.st.Worker(worker); err != nil {
		return err
	}
	p.log.MustAppend(eventlog.Event{
		Time: p.now(), Type: eventlog.TaskOffered, Task: task, Worker: worker, Requester: t.Requester,
	})
	return nil
}

// RecordContribution stores a contribution and its submission event.
func (p *Platform) RecordContribution(c *Contribution) error {
	if err := p.st.PutContribution(c); err != nil {
		return err
	}
	p.log.MustAppend(eventlog.Event{
		Time: p.now(), Type: eventlog.TaskSubmitted, Task: c.Task, Worker: c.Worker, Contribution: c.ID,
	})
	return nil
}

// AppendEvent appends a raw trace event (for replaying external traces).
func (p *Platform) AppendEvent(e Event) error {
	_, err := p.log.Append(e)
	return err
}

// now returns the next logical timestamp (monotone with the log). LastTime
// reads the tail under the log's read lock without copying the trace —
// the previous Events()-based implementation cloned the whole log per
// mutation, turning every serving write into an O(trace) allocation.
func (p *Platform) now() int64 {
	return p.log.LastTime()
}

// Reshard changes the platform store's shard count online: entities are
// handed off shard by shard under the write lock, readers and writers keep
// running throughout, and on durable platforms the write-ahead layout and
// manifest move to the new route epoch atomically with the cutover. A
// warmed incremental auditor survives — its next AuditIncremental remaps
// cursors onto the new layout and re-checks only the overlap.
func (p *Platform) Reshard(n int) error { return p.st.Reshard(n) }

// Store exposes the underlying store for advanced queries.
func (p *Platform) Store() *store.Store { return p.st }

// Log exposes the underlying event log.
func (p *Platform) Log() *eventlog.Log { return p.log }

// AuditFairness runs all five fairness axiom checkers over the platform
// trace and returns their reports in axiom order.
func (p *Platform) AuditFairness(cfg AuditConfig) []*FairnessReport {
	return fairness.CheckAll(p.st, p.log, cfg)
}

// AuditIncremental audits the trace through the incremental engine
// (internal/audit): the first call runs the full cold-start scan, later
// calls re-check only the pairs the store changelog and event log mark as
// dirty — an order-of-magnitude win for continuous monitoring. Reported
// violations are guaranteed identical to AuditFairness over the same trace;
// for Axioms 1–2 Report.Checked counts only the delta work performed.
// Changing cfg between calls resets the engine (a cold start under the new
// thresholds).
func (p *Platform) AuditIncremental(cfg AuditConfig) []*FairnessReport {
	if p.auditor == nil || !sameAuditConfig(p.auditorCfg, cfg) {
		p.auditor = audit.New(p.st, p.log, cfg)
		p.auditorCfg = cfg
	}
	return p.auditor.Audit()
}

// sameAuditConfig compares the checker-relevant fields of two configs.
// Measure functions are compared by name; the Memo field is ignored — the
// incremental engine installs its own cache either way. A config judged
// different only costs a cold start, never correctness.
func sameAuditConfig(a, b AuditConfig) bool {
	return a.SkillMeasure.Name == b.SkillMeasure.Name &&
		a.SkillThreshold == b.SkillThreshold &&
		sameAttrPolicy(a.AttrPolicy, b.AttrPolicy) &&
		a.AttrThreshold == b.AttrThreshold &&
		a.AccessThreshold == b.AccessThreshold &&
		a.RewardTolerance == b.RewardTolerance &&
		a.ContributionThreshold == b.ContributionThreshold &&
		a.PayTolerance == b.PayTolerance &&
		a.Exhaustive == b.Exhaustive &&
		a.CandidateKind() == b.CandidateKind() &&
		(a.CandidateKind() != fairness.CandidateLSH || a.LSHSeed == b.LSHSeed)
}

// sameAttrPolicy deep-compares two attribute policies, including the
// per-field tolerance overrides and the ignore set, so platforms auditing
// under a custom policy keep reusing their warmed incremental engine
// instead of silently cold-starting on every AuditIncremental call.
func sameAttrPolicy(a, b *similarity.AttrPolicy) bool {
	if a == b {
		return true
	}
	if a == nil || b == nil {
		return false
	}
	if a.NumTolerance != b.NumTolerance || a.MissingPenalty != b.MissingPenalty {
		return false
	}
	if len(a.FieldTolerance) != len(b.FieldTolerance) {
		return false
	}
	for k, v := range a.FieldTolerance {
		if bv, ok := b.FieldTolerance[k]; !ok || bv != v {
			return false
		}
	}
	// IgnoreFields entries explicitly set to false mean the same as absent.
	for k, on := range a.IgnoreFields {
		if on != b.IgnoreFields[k] {
			return false
		}
	}
	for k, on := range b.IgnoreFields {
		if on != a.IgnoreFields[k] {
			return false
		}
	}
	return true
}

// AuditTransparency runs the Axiom 6 and 7 checkers against the trace,
// using the standard catalogue when cat is nil.
func (p *Platform) AuditTransparency(cat *Catalogue) (axiom6, axiom7 *TransparencyReport) {
	if cat == nil {
		cat = transparency.StandardCatalogue()
	}
	return transparency.CheckAxiom6(cat, p.log), transparency.CheckAxiom7(cat, p.log)
}

// WriteTrace serialises the platform's event trace as JSON lines.
func (p *Platform) WriteTrace(w io.Writer) error {
	_, err := p.log.WriteTo(w)
	return err
}

// LoadTrace replaces the platform's event log with a trace previously
// produced by WriteTrace. Durable platforms refuse: swapping in an
// in-memory log would silently end event persistence.
func (p *Platform) LoadTrace(r io.Reader) error {
	if p.dir != "" {
		return fmt.Errorf("crowdfair: LoadTrace on a durable platform")
	}
	l, err := eventlog.Read(r)
	if err != nil {
		return err
	}
	p.log = l
	p.auditor = nil // the engine's cursor points into the old log
	return nil
}

// ParsePolicy parses a declarative transparency policy and statically
// checks it against the standard catalogue, returning all check errors
// joined.
func ParsePolicy(src string) (*Policy, error) {
	pol, err := transparency.Parse(src)
	if err != nil {
		return nil, err
	}
	if errs := transparency.StandardCatalogue().Check(pol); len(errs) > 0 {
		return nil, fmt.Errorf("crowdfair: policy %q: %d check error(s), first: %w", pol.Name, len(errs), errs[0])
	}
	return pol, nil
}

// RenderPolicy translates a policy into human-readable commitments using
// the standard catalogue.
func RenderPolicy(pol *Policy) string {
	return transparency.Render(pol, transparency.StandardCatalogue())
}

// ComparePolicies diffs two policies (the cross-platform comparison the
// declarative design enables) and renders the result.
func ComparePolicies(a, b *Policy) string {
	return transparency.Compare(a, b).String()
}

// PolicyScore quantifies how much of the standard catalogue a policy
// discloses to workers, in [0,1].
func PolicyScore(pol *Policy) float64 {
	return transparency.TransparencyScore(pol, transparency.StandardCatalogue())
}

// StandardCatalogue exposes the paper-derived disclosure schema.
func StandardCatalogue() *Catalogue { return transparency.StandardCatalogue() }

// LintPolicy returns redundancy warnings (duplicate and shadowed rules)
// for a policy, as human-readable strings. An empty result means the
// policy has no redundant commitments.
func LintPolicy(pol *Policy) []string {
	var out []string
	for _, w := range transparency.Lint(pol) {
		out = append(out, w.String())
	}
	return out
}

// EncodePolicyJSON serialises a policy to its JSON interchange form.
func EncodePolicyJSON(pol *Policy) ([]byte, error) {
	return pol.MarshalJSON()
}

// DecodePolicyJSON parses a policy from its JSON interchange form and
// statically checks it against the standard catalogue.
func DecodePolicyJSON(data []byte) (*Policy, error) {
	pol, err := transparency.DecodePolicy(data)
	if err != nil {
		return nil, err
	}
	if errs := transparency.StandardCatalogue().Check(pol); len(errs) > 0 {
		return nil, fmt.Errorf("crowdfair: policy %q: %d check error(s), first: %w", pol.Name, len(errs), errs[0])
	}
	return pol, nil
}
