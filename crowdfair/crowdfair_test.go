package crowdfair

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/eventlog"
)

func demoPlatform(t *testing.T) *Platform {
	t.Helper()
	u := NewUniverse("translation", "labeling")
	p := NewPlatform(u)
	if err := p.AddRequester(&Requester{ID: "r1"}); err != nil {
		t.Fatal(err)
	}
	for _, id := range []WorkerID{"w1", "w2"} {
		w := &Worker{
			ID:       id,
			Declared: Attributes{"country": Str("jp")},
			Computed: Attributes{"acceptance_ratio": Num(0.9)},
			Skills:   u.MustVector("labeling"),
		}
		if err := p.AddWorker(w); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.PostTask(&Task{ID: "t1", Requester: "r1", Skills: u.MustVector("labeling"), Reward: 1}); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPlatformBuildAndAudit(t *testing.T) {
	p := demoPlatform(t)
	// Unequal access: only w1 sees t1.
	if err := p.Offer("t1", "w1"); err != nil {
		t.Fatal(err)
	}
	reports := p.AuditFairness(DefaultAuditConfig())
	if len(reports) != 5 {
		t.Fatalf("reports = %d", len(reports))
	}
	if reports[0].Satisfied() {
		t.Fatal("Axiom 1 violation not found")
	}
	// Equalise access; the audit must pass.
	if err := p.Offer("t1", "w2"); err != nil {
		t.Fatal(err)
	}
	reports = p.AuditFairness(DefaultAuditConfig())
	if !reports[0].Satisfied() {
		t.Fatalf("Axiom 1 still violated: %v", reports[0].Violations)
	}
}

func TestPlatformOfferValidatesEntities(t *testing.T) {
	p := demoPlatform(t)
	if err := p.Offer("ghost", "w1"); err == nil {
		t.Error("offer of unknown task accepted")
	}
	if err := p.Offer("t1", "ghost"); err == nil {
		t.Error("offer to unknown worker accepted")
	}
}

func TestPlatformRecordContribution(t *testing.T) {
	p := demoPlatform(t)
	c := &Contribution{ID: "c1", Task: "t1", Worker: "w1", Text: "x", Quality: 0.9, Accepted: true, Paid: 1}
	if err := p.RecordContribution(c); err != nil {
		t.Fatal(err)
	}
	if got := len(p.Log().ByType(eventlog.TaskSubmitted)); got != 1 {
		t.Fatalf("submitted events = %d", got)
	}
}

func TestPlatformTraceRoundTrip(t *testing.T) {
	p := demoPlatform(t)
	if err := p.Offer("t1", "w1"); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	q := demoPlatform(t)
	if err := q.LoadTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if q.Log().Len() != p.Log().Len() {
		t.Fatalf("trace lengths differ: %d vs %d", q.Log().Len(), p.Log().Len())
	}
}

func TestParsePolicyChecksCatalogue(t *testing.T) {
	good := `policy "x" { disclose requester.hourly_wage to workers always; }`
	if _, err := ParsePolicy(good); err != nil {
		t.Fatalf("valid policy rejected: %v", err)
	}
	bad := `policy "x" { disclose worker.shoe_size to workers always; }`
	if _, err := ParsePolicy(bad); err == nil {
		t.Fatal("uncatalogued field accepted")
	}
	if _, err := ParsePolicy("syntax error"); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestRenderAndScore(t *testing.T) {
	pol, err := ParsePolicy(`policy "demo" { disclose task.reward to workers always; }`)
	if err != nil {
		t.Fatal(err)
	}
	out := RenderPolicy(pol)
	if !strings.Contains(out, "reward") {
		t.Fatalf("render = %s", out)
	}
	score := PolicyScore(pol)
	if score <= 0 || score >= 1 {
		t.Fatalf("score = %v", score)
	}
}

func TestComparePoliciesFacade(t *testing.T) {
	a, _ := ParsePolicy(`policy "a" { disclose task.reward to workers always; }`)
	b, _ := ParsePolicy(`policy "b" { disclose requester.hourly_wage to workers always; }`)
	out := ComparePolicies(a, b)
	if !strings.Contains(out, "task.reward") || !strings.Contains(out, "hourly_wage") {
		t.Fatalf("comparison = %s", out)
	}
}

func TestSimulateEndToEnd(t *testing.T) {
	res, err := Simulate(SimulationSpec{
		Workers: 40, Tasks: 30, Rounds: 2,
		Assigner: "fair-round-robin", PayScheme: "quality-based",
		Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Submitted == 0 {
		t.Fatal("no submissions")
	}
	reports := res.Platform.AuditFairness(DefaultAuditConfig())
	if len(reports) != 5 {
		t.Fatalf("reports = %d", len(reports))
	}
	a6, a7 := res.Platform.AuditTransparency(nil)
	if a6.Axiom != 6 || a7.Axiom != 7 {
		t.Fatal("transparency reports mislabelled")
	}
}

func TestSimulateWithPolicy(t *testing.T) {
	pol, err := ParsePolicy(`policy "open" {
		disclose requester.hourly_wage to workers always;
		disclose worker.performance to workers always;
	}`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(SimulationSpec{Workers: 30, Tasks: 20, Rounds: 2, Policy: pol, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.TransparencyScore <= 0 {
		t.Fatalf("score = %v", res.Metrics.TransparencyScore)
	}
	if got := len(res.Platform.Log().ByType(eventlog.Disclosure)); got == 0 {
		t.Fatal("no disclosure events emitted")
	}
}

func TestSimulateUnknownNames(t *testing.T) {
	cases := []SimulationSpec{
		{Assigner: "nope"},
		{PayScheme: "nope"},
		{Cancellation: "nope"},
	}
	for i, spec := range cases {
		if _, err := Simulate(spec); err == nil {
			t.Errorf("case %d: unknown name accepted", i)
		} else if _, ok := err.(*UnknownNameError); !ok {
			t.Errorf("case %d: error type = %T", i, err)
		}
	}
}

func TestNameLists(t *testing.T) {
	if len(AssignerNames()) != 6 {
		t.Fatalf("assigners = %v", AssignerNames())
	}
	if len(PaySchemeNames()) != 3 {
		t.Fatalf("schemes = %v", PaySchemeNames())
	}
}

func TestStandardCatalogueExposed(t *testing.T) {
	if StandardCatalogue() == nil {
		t.Fatal("catalogue nil")
	}
}

func TestLintPolicyFacade(t *testing.T) {
	pol, err := ParsePolicy(`policy "x" {
		disclose task.reward to workers always;
		disclose task.reward to workers always;
	}`)
	if err != nil {
		t.Fatal(err)
	}
	warnings := LintPolicy(pol)
	if len(warnings) != 1 || !strings.Contains(warnings[0], "duplicate") {
		t.Fatalf("warnings = %v", warnings)
	}
	clean, _ := ParsePolicy(`policy "y" { disclose task.reward to workers always; }`)
	if ws := LintPolicy(clean); len(ws) != 0 {
		t.Fatalf("clean policy warnings = %v", ws)
	}
}

func TestPolicyJSONFacade(t *testing.T) {
	pol, err := ParsePolicy(`policy "x" {
		disclose requester.hourly_wage to workers when worker.completed >= 3;
	}`)
	if err != nil {
		t.Fatal(err)
	}
	data, err := EncodePolicyJSON(pol)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodePolicyJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.String() != pol.String() {
		t.Fatalf("round trip mismatch:\n%s\n%s", pol, back)
	}
	// The JSON decoder also enforces the catalogue.
	bad := []byte(`{"name":"x","rules":[{"field":"worker.shoe_size","to":"workers","on":"always"}]}`)
	if _, err := DecodePolicyJSON(bad); err == nil {
		t.Fatal("uncatalogued JSON policy accepted")
	}
}

func TestAuditIncrementalTracksAuditFairness(t *testing.T) {
	p := demoPlatform(t)
	if err := p.Offer("t1", "w1"); err != nil {
		t.Fatal(err)
	}
	cfg := DefaultAuditConfig()
	sameViolations := func(round string) {
		t.Helper()
		inc := p.AuditIncremental(cfg)
		full := p.AuditFairness(cfg)
		if len(inc) != 5 || len(full) != 5 {
			t.Fatalf("%s: report counts %d/%d", round, len(inc), len(full))
		}
		for i := range inc {
			if len(inc[i].Violations) != len(full[i].Violations) {
				t.Fatalf("%s, %s: %d violations (incremental) vs %d (full)",
					round, inc[i].Axiom, len(inc[i].Violations), len(full[i].Violations))
			}
			for j := range inc[i].Violations {
				if inc[i].Violations[j].String() != full[i].Violations[j].String() {
					t.Fatalf("%s, %s: %s vs %s", round, inc[i].Axiom,
						inc[i].Violations[j], full[i].Violations[j])
				}
			}
		}
	}
	sameViolations("cold start (unequal access)")
	if rep := p.AuditIncremental(cfg); rep[0].Satisfied() {
		t.Fatal("incremental audit missed the Axiom 1 violation")
	}
	// Equalising access must clear the violation incrementally.
	if err := p.Offer("t1", "w2"); err != nil {
		t.Fatal(err)
	}
	sameViolations("after equalising access")
	if rep := p.AuditIncremental(cfg); !rep[0].Satisfied() {
		t.Fatalf("incremental audit kept a stale violation: %v", rep[0].Violations)
	}
	// A changed config takes effect (engine cold-starts under it).
	loose := DefaultAuditConfig()
	loose.AccessThreshold = -1 // explicit zero: nothing is ever a violation
	if rep := p.AuditIncremental(loose); !rep[0].Satisfied() {
		t.Fatalf("config change ignored: %v", rep[0].Violations)
	}
	sameViolations("back on the default config")
}
