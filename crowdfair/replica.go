package crowdfair

import (
	"time"

	"repro/internal/audit"
	"repro/internal/fairness"
	"repro/internal/replica"
	"repro/internal/store"
)

// Staleness is a replica's reported lag bound: the highest global version
// applied locally, the highest version observed in the primary's flushed
// write-ahead log, and their difference.
type Staleness = replica.Staleness

// Replica is a read-only follower of a durable platform directory, fed by
// tailing the primary's write-ahead segments (WAL shipping). It serves
// the same audit surface as a Platform — AuditIncremental over its local
// copy — with an explicit staleness bound instead of read-your-writes:
// reads reflect every mutation the primary had flushed as of the last
// CatchUp pass, and Staleness says how far behind the flushed log the
// replica may still be.
type Replica struct {
	rep *replica.Replica

	auditor    *audit.Engine
	auditorCfg AuditConfig
}

// OpenReplica bootstraps a read replica from the checkpoint in a durable
// platform directory. Nothing under dir is written; the primary may keep
// running. Call CatchUp (or Follow) to ship the write-ahead tail.
func OpenReplica(dir string) (*Replica, error) {
	rep, err := replica.Open(dir)
	if err != nil {
		return nil, err
	}
	return &Replica{rep: rep}, nil
}

// CatchUp runs one shipping pass over the primary's write-ahead
// directories and returns the number of store mutations applied. After
// the primary stops writing and syncs its logs, one pass converges the
// replica exactly.
func (r *Replica) CatchUp() (int, error) { return r.rep.CatchUp() }

// Follow starts a background poller that calls CatchUp every interval
// until Unfollow. Errors go to onErr (nil to ignore).
func (r *Replica) Follow(interval time.Duration, onErr func(error)) { r.rep.Run(interval, onErr) }

// Unfollow stops the poller started by Follow.
func (r *Replica) Unfollow() { r.rep.Stop() }

// AppliedVersion returns the highest global store version applied so far
// (monotonically non-decreasing).
func (r *Replica) AppliedVersion() uint64 { return r.rep.AppliedVersion() }

// Watermarks returns the replica store's per-shard applied versions.
func (r *Replica) Watermarks() []uint64 { return r.rep.Watermarks() }

// Staleness reports the replica's lag bound as of the last CatchUp pass.
func (r *Replica) Staleness() Staleness { return r.rep.Staleness() }

// Store exposes the replica's local store. Treat it as read-only — it is
// advanced only by CatchUp.
func (r *Replica) Store() *store.Store { return r.rep.Store() }

// AuditIncremental audits the replica's current state through the
// incremental engine, exactly as Platform.AuditIncremental does on the
// primary: at equal applied versions the reports are identical to the
// primary's. The engine warms across CatchUp passes, so continuous
// monitoring on the replica re-checks only what changed since the last
// call.
func (r *Replica) AuditIncremental(cfg AuditConfig) []*FairnessReport {
	if r.auditor == nil || !sameAuditConfig(r.auditorCfg, cfg) {
		r.auditor = audit.New(r.rep.Store(), r.rep.Log(), cfg)
		r.auditorCfg = cfg
	}
	return r.auditor.Audit()
}

// AuditFairness runs the batch fairness checkers over the replica's
// current state.
func (r *Replica) AuditFairness(cfg AuditConfig) []*FairnessReport {
	return fairness.CheckAll(r.rep.Store(), r.rep.Log(), cfg)
}

// Close stops any poller. The replica's in-memory state stays readable.
func (r *Replica) Close() error {
	r.rep.Stop()
	return nil
}
