package crowdfair

import (
	"repro/internal/assign"
	"repro/internal/complete"
	"repro/internal/pay"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// SimulationSpec parameterises a full marketplace simulation — the
// controlled-experiment harness of §4.1 — at the public-API level.
type SimulationSpec struct {
	// Workers and Tasks size the synthetic marketplace.
	Workers int
	Tasks   int
	// Rounds is the number of assignment/completion/payment cycles
	// (default 5).
	Rounds int
	// Assigner names the assignment algorithm: one of "self-appointment",
	// "requester-centric", "requester-centric-optimal", "worker-centric",
	// "fair-round-robin", "online-greedy" (default "fair-round-robin").
	Assigner string
	// PayScheme names the compensation scheme: "fixed", "quality-based",
	// or "similarity-fair" (default "fixed").
	PayScheme string
	// Cancellation names the completion policy: "never", "grace",
	// "on-quota" (default "never").
	Cancellation string
	// Policy is the platform transparency policy; nil simulates a fully
	// opaque platform.
	Policy *Policy
	// OverPublish is the Published/Quota ratio of tasks (default 1).
	OverPublish float64
	// AcceptanceMean and AcceptanceSpread shape the synthetic population's
	// competence distribution (defaults 0.85 / 0.1); a wider spread gives
	// requester-centric assignment more to discriminate on.
	AcceptanceMean   float64
	AcceptanceSpread float64
	// AcceptThreshold is the quality at/above which requesters accept a
	// contribution (default 0.5).
	AcceptThreshold float64
	// Seed makes the run reproducible.
	Seed uint64
}

// SimulationMetrics re-exports the simulator's objective measures.
type SimulationMetrics = sim.Metrics

// SimulationResult bundles the simulated platform (ready for auditing)
// with its metrics.
type SimulationResult struct {
	// Platform holds the simulated trace; run AuditFairness /
	// AuditTransparency on it directly.
	Platform *Platform
	Metrics  SimulationMetrics
}

// Simulate generates a synthetic population and task batch, runs the
// marketplace, and returns the populated platform plus metrics.
func Simulate(spec SimulationSpec) (*SimulationResult, error) {
	if spec.Workers <= 0 {
		spec.Workers = 100
	}
	if spec.Tasks <= 0 {
		spec.Tasks = 50
	}
	if spec.Rounds <= 0 {
		spec.Rounds = 5
	}
	rng := stats.NewRNG(spec.Seed + 0xc0ffee)
	pop := workload.GeneratePopulation(workload.PopulationSpec{
		Workers:          spec.Workers,
		AcceptanceMean:   spec.AcceptanceMean,
		AcceptanceSpread: spec.AcceptanceSpread,
	}, rng.Split())
	batch := workload.GenerateTasks(workload.TaskSpec{
		Tasks:       spec.Tasks,
		OverPublish: spec.OverPublish,
	}, pop, rng.Split())

	cfg := sim.Config{
		Population:        pop,
		Batch:             batch,
		Policy:            spec.Policy,
		Rounds:            spec.Rounds,
		AcceptThreshold:   spec.AcceptThreshold,
		Seed:              spec.Seed,
		FlagLowAcceptance: true,
	}
	if spec.Assigner != "" {
		a, ok := assign.ByName(spec.Assigner)
		if !ok {
			return nil, &UnknownNameError{Kind: "assigner", Name: spec.Assigner}
		}
		cfg.Assigner = a
	}
	if spec.PayScheme != "" {
		s, ok := pay.SchemeByName(spec.PayScheme)
		if !ok {
			return nil, &UnknownNameError{Kind: "pay scheme", Name: spec.PayScheme}
		}
		cfg.PayScheme = s
	}
	switch spec.Cancellation {
	case "", "never":
		cfg.Cancellation = complete.CancelNever
	case "grace":
		cfg.Cancellation = complete.CancelGrace
	case "on-quota":
		cfg.Cancellation = complete.CancelOnQuota
	default:
		return nil, &UnknownNameError{Kind: "cancellation policy", Name: spec.Cancellation}
	}

	res, err := sim.Run(cfg)
	if err != nil {
		return nil, err
	}
	return &SimulationResult{
		Platform: &Platform{st: res.Store, log: res.Log},
		Metrics:  res.Metrics,
	}, nil
}

// UnknownNameError reports an unrecognised algorithm/scheme/policy name in
// a SimulationSpec.
type UnknownNameError struct {
	Kind string
	Name string
}

// Error implements error.
func (e *UnknownNameError) Error() string {
	return "crowdfair: unknown " + e.Kind + " " + e.Name
}

// AssignerNames lists the valid SimulationSpec.Assigner values.
func AssignerNames() []string {
	var out []string
	for _, a := range assign.All() {
		out = append(out, a.Name())
	}
	return out
}

// PaySchemeNames lists the valid SimulationSpec.PayScheme values.
func PaySchemeNames() []string {
	var out []string
	for _, s := range pay.Schemes() {
		out = append(out, s.Name())
	}
	return out
}
