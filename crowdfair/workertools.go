package crowdfair

import (
	"sort"

	"repro/internal/reviews"
	"repro/internal/wage"
)

// Worker-tooling facade: the paper's §2.2 surveys the infrastructure
// workers built around opaque platforms — Turkopticon's requester reviews,
// Crowd-Workers/Turkbench's expected hourly wages. Here both are
// first-class platform features computed from the platform's own trace,
// so a platform adopting this library can disclose them natively instead
// of leaving workers to scrape.

// Re-exported worker-tooling types.
type (
	// WageEstimate is an aggregated hourly-wage figure for a requester,
	// task, or worker.
	WageEstimate = wage.Estimate
	// WageReport holds per-requester/task/worker wage estimates
	// reconstructed from a platform trace.
	WageReport = wage.Report
	// ReviewBoard collects Turkopticon-style requester reviews.
	ReviewBoard = reviews.Board
	// RequesterReview is one worker's review of a requester.
	RequesterReview = reviews.Review
	// RequesterRating is a requester's aggregated rating.
	RequesterRating = reviews.Aggregate
)

// Review axes, re-exported.
const (
	AxisPay      = reviews.AxisPay
	AxisFairness = reviews.AxisFairness
	AxisSpeed    = reviews.AxisSpeed
	AxisComm     = reviews.AxisComm
)

// NewReviewBoard returns an empty requester-review board.
func NewReviewBoard() *ReviewBoard { return reviews.NewBoard() }

// WageReport reconstructs hourly-wage estimates from the platform's trace
// (Turkbench as a platform feature).
func (p *Platform) WageReport() *WageReport {
	return wage.FromLog(p.log)
}

// HourlyWages returns the estimated hourly wage per requester, for binding
// to the requester.hourly_wage disclosure field.
func (p *Platform) HourlyWages() map[RequesterID]float64 {
	rep := p.WageReport()
	out := make(map[RequesterID]float64, len(rep.ByRequester))
	for id := range rep.ByRequester {
		if w, ok := rep.RequesterWage(id); ok {
			out[id] = w
		}
	}
	return out
}

// RankRequestersByWage returns requester ids by descending estimated
// hourly wage.
func (p *Platform) RankRequestersByWage() []RequesterID {
	return p.WageReport().RankRequesters()
}

// ReviewsFromTrace synthesises a review board from every worker's
// measurable experience in the platform trace: each worker reviews each
// requester they worked for, scoring pay against fairWage (the hourly wage
// the reviewer considers fair) and fairness against their personal paid
// rate with that requester. It is the Turkopticon bootstrap for platforms
// that have traces but no review culture yet.
func (p *Platform) ReviewsFromTrace(fairWage float64) (*ReviewBoard, error) {
	rep := p.WageReport()
	board := reviews.NewBoard()

	// Group episodes per (worker, requester).
	type key struct {
		w WorkerID
		r RequesterID
	}
	type exp struct {
		earned float64
		ticks  int64
		n      int
		paid   int
	}
	experiences := make(map[key]*exp)
	var keys []key
	for _, ep := range rep.Episodes {
		if ep.Requester == "" {
			continue
		}
		k := key{ep.Worker, ep.Requester}
		x := experiences[k]
		if x == nil {
			x = &exp{}
			experiences[k] = x
			keys = append(keys, k)
		}
		x.earned += ep.Earned
		x.ticks += ep.Duration()
		x.n++
		if ep.Earned > 0 {
			x.paid++
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].w != keys[j].w {
			return keys[i].w < keys[j].w
		}
		return keys[i].r < keys[j].r
	})
	for _, k := range keys {
		x := experiences[k]
		hourly := 0.0
		if x.ticks > 0 {
			hourly = x.earned / (float64(x.ticks) / wage.TicksPerHour)
		}
		acceptRate := float64(x.paid) / float64(x.n)
		review := reviews.ReviewFromExperience(k.w, k.r, hourly, fairWage, acceptRate, 0, 0)
		if err := board.Post(review); err != nil {
			return nil, err
		}
	}
	return board, nil
}
