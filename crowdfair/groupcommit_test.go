package crowdfair_test

import (
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/crowdfair"
	"repro/internal/audit"
)

// reportJSON canonicalises an audit-report slice for byte-equality checks.
func reportJSON(t *testing.T, reps []*crowdfair.FairnessReport) string {
	t.Helper()
	blob, err := json.Marshal(reps)
	if err != nil {
		t.Fatal(err)
	}
	return string(blob)
}

// buildGroupCommitScenario populates a platform with a fixed entity set:
// the worker population is inserted by conc concurrent appenders over
// disjoint ID ranges (exercising group commit when the platform's WAL
// policy groups), then tasks and offers are laid down serially so the
// event trace is identical across runs.
func buildGroupCommitScenario(t *testing.T, p *crowdfair.Platform, u *crowdfair.Universe, conc int) {
	t.Helper()
	if err := p.AddRequester(&crowdfair.Requester{ID: "r1"}); err != nil {
		t.Fatal(err)
	}
	const workers = 16
	perG := workers / conc
	errs := make([]error, conc)
	var wg sync.WaitGroup
	for g := 0; g < conc; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				n := g*perG + i
				w := &crowdfair.Worker{
					ID:       crowdfair.WorkerID(fmt.Sprintf("w%02d", n)),
					Declared: crowdfair.Attributes{"country": crowdfair.Str("jp")},
					Computed: crowdfair.Attributes{"acceptance_ratio": crowdfair.Num(float64(n%10) / 10)},
					Skills:   u.MustVector([]string{"go", "sql"}[n%2]),
				}
				if err := p.AddWorker(w); err != nil {
					errs[g] = err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("appender %d: %v", g, err)
		}
	}
	for i := 0; i < 6; i++ {
		task := &crowdfair.Task{
			ID:        crowdfair.TaskID(fmt.Sprintf("t%02d", i)),
			Requester: "r1",
			Skills:    u.MustVector("go"),
			Reward:    float64(1 + i%3),
		}
		if err := p.PostTask(task); err != nil {
			t.Fatal(err)
		}
		if err := p.Offer(task.ID, crowdfair.WorkerID(fmt.Sprintf("w%02d", (2*i)%16))); err != nil {
			t.Fatal(err)
		}
	}
}

// TestGroupCommitReplicaAndAuditDeterminism is the cross-policy
// determinism contract at the platform level: the same scenario committed
// under every WAL sync policy and appender concurrency must give (a) a
// replica that converges to the primary's exact version via CatchUp and
// stays converged via Follow across further writes, and (b) audit reports —
// primary and replica — that are byte-identical across every
// (policy, concurrency) cell. Sync policy buys durability, never different
// results.
func TestGroupCommitReplicaAndAuditDeterminism(t *testing.T) {
	u := crowdfair.NewUniverse("go", "sql")
	cfg := crowdfair.DefaultAuditConfig()
	policies := []crowdfair.SyncPolicy{
		crowdfair.SyncNever,
		crowdfair.SyncOnRotate,
		crowdfair.SyncInterval(time.Millisecond),
		crowdfair.SyncAlways,
	}
	var wantAudit string
	for _, conc := range []int{1, 4} {
		for _, pol := range policies {
			label := fmt.Sprintf("conc=%d/%s", conc, pol)
			dir := t.TempDir()
			p, err := crowdfair.OpenPlatformWAL(dir, u, cfg, crowdfair.WALOptions{Sync: pol})
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			buildGroupCommitScenario(t, p, u, conc)
			syncPrimary(t, p)

			// CatchUp parity: the follower drains the batched WAL tail to
			// exactly the primary's version.
			r, err := crowdfair.OpenReplica(dir)
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			if n := drain(t, r); n == 0 {
				t.Fatalf("%s: replica applied nothing", label)
			}
			if got, want := r.AppliedVersion(), p.Store().Version(); got != want {
				t.Fatalf("%s: replica at %d, primary at %d", label, got, want)
			}

			// Follow parity: background tailing must ride batched flush
			// boundaries across further grouped writes.
			r.Follow(time.Millisecond, nil)
			for i := 16; i < 20; i++ {
				w := &crowdfair.Worker{
					ID:     crowdfair.WorkerID(fmt.Sprintf("w%02d", i)),
					Skills: u.MustVector("sql"),
				}
				if err := p.AddWorker(w); err != nil {
					t.Fatal(err)
				}
			}
			syncPrimary(t, p)
			deadline := time.Now().Add(10 * time.Second)
			for r.AppliedVersion() < p.Store().Version() {
				if time.Now().After(deadline) {
					t.Fatalf("%s: Follow never converged (replica %d, primary %d)",
						label, r.AppliedVersion(), p.Store().Version())
				}
				time.Sleep(time.Millisecond)
			}
			r.Unfollow()

			primaryReps := p.AuditIncremental(cfg)
			replicaReps := r.AuditIncremental(cfg)
			if !audit.ViolationsEqual(primaryReps, replicaReps) {
				t.Fatalf("%s: replica audit diverges from primary", label)
			}
			pj, rj := reportJSON(t, primaryReps), reportJSON(t, replicaReps)
			if pj != rj {
				t.Fatalf("%s: replica audit not byte-identical to primary", label)
			}
			if wantAudit == "" {
				wantAudit = pj
			} else if pj != wantAudit {
				t.Fatalf("%s: audit report differs from other policy/concurrency cells", label)
			}
			if err := r.Close(); err != nil {
				t.Fatal(err)
			}
			if err := p.Close(); err != nil {
				t.Fatal(err)
			}
		}
	}
}
