package crowdfair

import (
	"testing"

	"repro/internal/eventlog"
)

// tracedPlatform builds a platform whose trace contains two requesters
// with contrasting pay behaviour.
func tracedPlatform(t *testing.T) *Platform {
	t.Helper()
	u := NewUniverse("s")
	p := NewPlatform(u)
	for _, r := range []RequesterID{"good", "bad"} {
		if err := p.AddRequester(&Requester{ID: r}); err != nil {
			t.Fatal(err)
		}
	}
	for _, w := range []WorkerID{"w1", "w2"} {
		if err := p.AddWorker(&Worker{ID: w, Skills: u.MustVector("s")}); err != nil {
			t.Fatal(err)
		}
	}
	now := int64(1)
	add := func(e Event) {
		e.Time = now
		if err := p.AppendEvent(e); err != nil {
			t.Fatal(err)
		}
	}
	for _, tc := range []struct {
		req  RequesterID
		task TaskID
		pay  float64
	}{
		{"good", "tg", 2.0},
		{"bad", "tb", 0.2},
	} {
		add(Event{Type: eventlog.TaskPosted, Task: tc.task, Requester: tc.req})
		for _, w := range []WorkerID{"w1", "w2"} {
			cid := ContributionID(string(tc.task) + "-" + string(w))
			add(Event{Type: eventlog.TaskStarted, Task: tc.task, Worker: w})
			now += 4
			add(Event{Type: eventlog.TaskSubmitted, Task: tc.task, Worker: w, Contribution: cid})
			if tc.pay > 0 {
				add(Event{Type: eventlog.PaymentIssued, Task: tc.task, Worker: w, Contribution: cid, Amount: tc.pay})
			}
			now++
		}
	}
	return p
}

func TestHourlyWages(t *testing.T) {
	p := tracedPlatform(t)
	wages := p.HourlyWages()
	if len(wages) != 2 {
		t.Fatalf("wages = %v", wages)
	}
	if wages["good"] <= wages["bad"] {
		t.Fatalf("good %v should out-pay bad %v", wages["good"], wages["bad"])
	}
	rank := p.RankRequestersByWage()
	if len(rank) != 2 || rank[0] != "good" {
		t.Fatalf("rank = %v", rank)
	}
}

func TestWageReportEpisodes(t *testing.T) {
	p := tracedPlatform(t)
	rep := p.WageReport()
	if len(rep.Episodes) != 4 {
		t.Fatalf("episodes = %d", len(rep.Episodes))
	}
	if est := rep.ByWorker["w1"]; est == nil || est.Episodes != 2 {
		t.Fatalf("w1 estimate = %+v", est)
	}
}

func TestReviewsFromTrace(t *testing.T) {
	p := tracedPlatform(t)
	board, err := p.ReviewsFromTrace(3.0)
	if err != nil {
		t.Fatal(err)
	}
	if board.Count("good") != 2 || board.Count("bad") != 2 {
		t.Fatalf("counts = %d/%d", board.Count("good"), board.Count("bad"))
	}
	rank := board.Rank()
	if len(rank) != 2 || rank[0].Requester != "good" {
		t.Fatalf("rank = %v", rank)
	}
	goodAgg, _ := board.Aggregate("good")
	badAgg, _ := board.Aggregate("bad")
	if goodAgg.Mean[AxisPay] <= badAgg.Mean[AxisPay] {
		t.Fatalf("pay ratings inverted: %v vs %v", goodAgg.Mean[AxisPay], badAgg.Mean[AxisPay])
	}
}

func TestReviewsFromSimulatedTrace(t *testing.T) {
	res, err := Simulate(SimulationSpec{Workers: 30, Tasks: 20, Rounds: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	board, err := res.Platform.ReviewsFromTrace(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(board.Rank()) == 0 {
		t.Fatal("no reviews from simulated trace")
	}
}
