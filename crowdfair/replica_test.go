package crowdfair_test

import (
	"fmt"
	"testing"

	"repro/crowdfair"
	"repro/internal/audit"
)

// syncPrimary flushes the primary's write-ahead logs so a replica pass can
// see everything written so far.
func syncPrimary(t *testing.T, p *crowdfair.Platform) {
	t.Helper()
	if err := p.Store().SyncWAL(); err != nil {
		t.Fatal(err)
	}
	if err := p.Log().Sync(); err != nil {
		t.Fatal(err)
	}
}

// drain runs CatchUp passes until one applies nothing, returning the total
// applied. Watermark monotonicity is asserted along the way.
func drain(t *testing.T, r *crowdfair.Replica) int {
	t.Helper()
	total := 0
	last := r.AppliedVersion()
	for {
		n, err := r.CatchUp()
		if err != nil {
			t.Fatal(err)
		}
		if v := r.AppliedVersion(); v < last {
			t.Fatalf("applied version went backwards: %d after %d", v, last)
		} else {
			last = v
		}
		total += n
		if n == 0 {
			return total
		}
	}
}

// TestReplicaConvergence is the replica acceptance test: a follower
// tailing a live primary's WAL directory converges exactly once writes
// stop, its watermark only moves forward, and its incremental audit at the
// converged version reports exactly what the primary reports.
func TestReplicaConvergence(t *testing.T) {
	dir := t.TempDir()
	u := crowdfair.NewUniverse("go", "sql")
	cfg := crowdfair.DefaultAuditConfig()
	p, err := crowdfair.OpenPlatform(dir, u, cfg)
	if err != nil {
		t.Fatal(err)
	}

	if err := p.AddRequester(&crowdfair.Requester{ID: "r1"}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		w := &crowdfair.Worker{
			ID:     crowdfair.WorkerID(fmt.Sprintf("w%02d", i)),
			Skills: u.MustVector([]string{"go", "sql"}[i%2]),
		}
		if err := p.AddWorker(w); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 6; i++ {
		task := &crowdfair.Task{
			ID:        crowdfair.TaskID(fmt.Sprintf("t%02d", i)),
			Requester: "r1",
			Skills:    u.MustVector("go"),
			Reward:    float64(1 + i),
		}
		if err := p.PostTask(task); err != nil {
			t.Fatal(err)
		}
		// Offer each task to only some of the skilled workers: access
		// asymmetry the fairness axioms will flag identically on both
		// sides.
		if err := p.Offer(task.ID, crowdfair.WorkerID(fmt.Sprintf("w%02d", (2*i)%12))); err != nil {
			t.Fatal(err)
		}
	}
	syncPrimary(t, p)

	// Bootstrap the follower from the (empty-checkpoint) manifest, then
	// ship the whole tail.
	r, err := crowdfair.OpenReplica(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if n := drain(t, r); n == 0 {
		t.Fatal("replica applied nothing from a non-empty log")
	}
	primaryV := p.Store().Version()
	if got := r.AppliedVersion(); got != primaryV {
		t.Fatalf("replica at version %d, primary at %d", got, primaryV)
	}
	st := r.Staleness()
	if st.Lag != 0 || st.Applied != primaryV || st.Observed != primaryV {
		t.Fatalf("staleness after convergence = %+v", st)
	}

	// The replica's audit must match the primary's at the same version.
	want := p.AuditIncremental(cfg)
	got := r.AuditIncremental(cfg)
	if !audit.ViolationsEqual(want, got) {
		t.Fatal("replica audit reports differ from primary at the same version")
	}

	// More writes on the primary — including an online reshard, which
	// moves the WAL to new epoch directories — ship incrementally into the
	// same replica.
	if err := p.Reshard(5); err != nil {
		t.Fatal(err)
	}
	for i := 12; i < 20; i++ {
		w := &crowdfair.Worker{
			ID:     crowdfair.WorkerID(fmt.Sprintf("w%02d", i)),
			Skills: u.MustVector("sql"),
		}
		if err := p.AddWorker(w); err != nil {
			t.Fatal(err)
		}
		c := &crowdfair.Contribution{
			ID:     crowdfair.ContributionID(fmt.Sprintf("c%02d", i)),
			Task:   "t00",
			Worker: w.ID,
		}
		if err := p.RecordContribution(c); err != nil {
			t.Fatal(err)
		}
	}
	syncPrimary(t, p)
	if n := drain(t, r); n == 0 {
		t.Fatal("replica missed the post-reshard tail")
	}
	if got, want := r.AppliedVersion(), p.Store().Version(); got != want {
		t.Fatalf("replica at version %d after reshard, primary at %d", got, want)
	}
	if got, want := len(r.Store().Workers()), 20; got != want {
		t.Fatalf("replica sees %d workers, want %d", got, want)
	}
	if !audit.ViolationsEqual(p.AuditIncremental(cfg), r.AuditIncremental(cfg)) {
		t.Fatal("replica audit diverged after incremental catch-up across a reshard")
	}

	// Watermarks cover every replica shard and sum to a consistent layout.
	marks := r.Watermarks()
	if len(marks) != r.Store().ShardCount() {
		t.Fatalf("%d watermarks for %d shards", len(marks), r.Store().ShardCount())
	}
	var max uint64
	for _, m := range marks {
		if m > max {
			max = m
		}
	}
	if max != r.AppliedVersion() {
		t.Fatalf("max shard watermark %d != applied version %d", max, r.AppliedVersion())
	}

	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestReplicaFromCheckpoint pins the bootstrap path: a replica opened
// against a checkpointed directory starts from the snapshot and ships only
// the post-checkpoint tail.
func TestReplicaFromCheckpoint(t *testing.T) {
	dir := t.TempDir()
	u := crowdfair.NewUniverse("go")
	cfg := crowdfair.DefaultAuditConfig()
	p, err := crowdfair.OpenPlatform(dir, u, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.AddRequester(&crowdfair.Requester{ID: "r1"}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		w := &crowdfair.Worker{ID: crowdfair.WorkerID(fmt.Sprintf("w%02d", i)), Skills: u.MustVector("go")}
		if err := p.AddWorker(w); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	checkpointV := p.Store().Version()
	for i := 8; i < 11; i++ {
		w := &crowdfair.Worker{ID: crowdfair.WorkerID(fmt.Sprintf("w%02d", i)), Skills: u.MustVector("go")}
		if err := p.AddWorker(w); err != nil {
			t.Fatal(err)
		}
	}
	syncPrimary(t, p)

	r, err := crowdfair.OpenReplica(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := r.AppliedVersion(); got != checkpointV {
		t.Fatalf("bootstrap version %d, want checkpoint version %d", got, checkpointV)
	}
	if applied := drain(t, r); applied != 3 {
		t.Fatalf("shipped %d tail mutations, want 3", applied)
	}
	if got, want := r.AppliedVersion(), p.Store().Version(); got != want {
		t.Fatalf("replica at %d, primary at %d", got, want)
	}
	if got := len(r.Store().Workers()); got != 11 {
		t.Fatalf("replica sees %d workers, want 11", got)
	}
	if !audit.ViolationsEqual(p.AuditIncremental(cfg), r.AuditIncremental(cfg)) {
		t.Fatal("replica audit differs from primary")
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
}
