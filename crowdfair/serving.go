package crowdfair

import (
	"repro/internal/eventlog"
)

// Offer names one task-visibility grant — the access evidence Axioms 1
// and 2 audit. It is the batch form of Platform.Offer.
type Offer struct {
	Task   TaskID   `json:"Task"`
	Worker WorkerID `json:"Worker"`
}

// The batch mutation entry points below are the serving hot path: a
// front-end coalesces many concurrent requests into one call, the store
// fans the writes out by owning shard under a single lock acquisition per
// shard (store.bulkApply), and both the store WAL and the event trace pay
// one group-commit durability wait per shard for the whole batch instead
// of one per request. Events are appended after the entities land so a
// replayed trace never references an entity the store does not hold yet.

// AddWorkers registers many workers and logs their arrivals, batching both
// the store writes and the trace appends. On error the store keeps every
// insert that preceded the failure in its shard (see store.BulkPutWorkers);
// arrival events are only logged when every insert succeeded.
func (p *Platform) AddWorkers(ws []*Worker) error {
	if len(ws) == 0 {
		return nil
	}
	if err := p.st.BulkPutWorkers(ws); err != nil {
		return err
	}
	t := p.now()
	events := make([]eventlog.Event, len(ws))
	for i, w := range ws {
		events[i] = eventlog.Event{Time: t, Type: eventlog.WorkerJoined, Worker: w.ID}
	}
	return p.log.AppendBatch(events)
}

// UpdateWorkers replaces many existing workers' attributes and skills in
// one shard-parallel batch. Updates log no trace events, matching the
// single-entity store path.
func (p *Platform) UpdateWorkers(ws []*Worker) error {
	if len(ws) == 0 {
		return nil
	}
	return p.st.BulkUpdateWorkers(ws)
}

// PostTasks publishes many tasks and logs TaskPosted for each, batching the
// store writes and the trace appends. Referenced requesters must already
// exist.
func (p *Platform) PostTasks(ts []*Task) error {
	if len(ts) == 0 {
		return nil
	}
	if err := p.st.BulkPutTasks(ts); err != nil {
		return err
	}
	t := p.now()
	events := make([]eventlog.Event, len(ts))
	for i, tk := range ts {
		events[i] = eventlog.Event{Time: t, Type: eventlog.TaskPosted, Task: tk.ID, Requester: tk.Requester}
	}
	return p.log.AppendBatch(events)
}

// RecordContributions stores many contributions and their submission
// events, batching the store writes and the trace appends. Referenced
// tasks and workers must already exist.
func (p *Platform) RecordContributions(cs []*Contribution) error {
	if len(cs) == 0 {
		return nil
	}
	if err := p.st.BulkPutContributions(cs); err != nil {
		return err
	}
	t := p.now()
	events := make([]eventlog.Event, len(cs))
	for i, c := range cs {
		events[i] = eventlog.Event{Time: t, Type: eventlog.TaskSubmitted, Task: c.Task, Worker: c.Worker, Contribution: c.ID}
	}
	return p.log.AppendBatch(events)
}

// UpdateContribution replaces an existing contribution (accept/reject
// decision, payment). Task and worker are immutable.
func (p *Platform) UpdateContribution(c *Contribution) error {
	return p.st.UpdateContribution(c)
}

// OfferBatch records many task-visibility grants as one trace batch. Every
// referenced task and worker must exist; on a dangling reference nothing is
// appended.
func (p *Platform) OfferBatch(offers []Offer) error {
	if len(offers) == 0 {
		return nil
	}
	t := p.now()
	events := make([]eventlog.Event, len(offers))
	for i, o := range offers {
		tk, err := p.st.Task(o.Task)
		if err != nil {
			return err
		}
		if _, err := p.st.Worker(o.Worker); err != nil {
			return err
		}
		events[i] = eventlog.Event{
			Time: t, Type: eventlog.TaskOffered, Task: o.Task, Worker: o.Worker, Requester: tk.Requester,
		}
	}
	return p.log.AppendBatch(events)
}

// Universe returns the skill universe the platform's store was built over.
func (p *Platform) Universe() *Universe { return p.st.Universe() }

// Version returns the store's current mutation counter — the freshness
// stamp served alongside cached audit reports.
func (p *Platform) Version() uint64 { return p.st.Version() }

// EntityCounts returns the store's table sizes plus the trace length, the
// cheap inventory a serving stats endpoint reports.
func (p *Platform) EntityCounts() (workers, tasks, contributions, events int) {
	return p.st.WorkerCount(), p.st.TaskCount(), p.st.ContributionCount(), p.log.Len()
}

// ValidateOffer reports the first dangling task/worker reference of an
// offer without touching the log — front-ends use it to screen a coalesced
// batch before applying it.
func (p *Platform) ValidateOffer(o Offer) error {
	if _, err := p.st.Task(o.Task); err != nil {
		return err
	}
	if _, err := p.st.Worker(o.Worker); err != nil {
		return err
	}
	return nil
}
