// Quickstart: build a tiny crowdsourcing platform in memory, record who was
// offered what, and audit it against the fairness axioms of Borromeo et al.
// (EDBT 2017).
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/crowdfair"
)

func main() {
	// The skill universe S = {s1..sm} shared by tasks and workers (§3.2).
	u := crowdfair.NewUniverse("translation", "labeling", "transcription")
	p := crowdfair.NewPlatform(u)

	if err := p.AddRequester(&crowdfair.Requester{ID: "acme", Name: "Acme Surveys"}); err != nil {
		log.Fatal(err)
	}

	// Two workers with identical declared attributes, computed attributes,
	// and skills — the "similar workers" of Axiom 1.
	for _, id := range []crowdfair.WorkerID{"alice", "bob"} {
		err := p.AddWorker(&crowdfair.Worker{
			ID:       id,
			Declared: crowdfair.Attributes{"country": crowdfair.Str("jp")},
			Computed: crowdfair.Attributes{"acceptance_ratio": crowdfair.Num(0.92)},
			Skills:   u.MustVector("labeling"),
		})
		if err != nil {
			log.Fatal(err)
		}
	}

	if err := p.PostTask(&crowdfair.Task{
		ID: "label-cats", Requester: "acme",
		Skills: u.MustVector("labeling"), Reward: 0.5,
		Title: "Label 20 cat pictures",
	}); err != nil {
		log.Fatal(err)
	}

	// The platform shows the task to alice only — discrimination in task
	// assignment.
	if err := p.Offer("label-cats", "alice"); err != nil {
		log.Fatal(err)
	}

	fmt.Println("== audit with unequal access ==")
	for _, rep := range p.AuditFairness(crowdfair.DefaultAuditConfig()) {
		fmt.Println(" ", rep)
		for _, v := range rep.Violations {
			fmt.Println("   ", v)
		}
	}

	// Remedy: give bob the same access and re-audit.
	if err := p.Offer("label-cats", "bob"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n== audit after equalising access ==")
	for _, rep := range p.AuditFairness(crowdfair.DefaultAuditConfig()) {
		fmt.Println(" ", rep)
	}
}
