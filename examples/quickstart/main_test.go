package main

import (
	"bytes"
	"io"
	"os"
	"strings"
	"testing"
)

// captureMain runs main() end-to-end with os.Stdout redirected to a pipe
// and returns everything it printed.
func captureMain(t *testing.T) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	done := make(chan string)
	go func() {
		var b bytes.Buffer
		io.Copy(&b, r)
		done <- b.String()
	}()
	main()
	w.Close()
	os.Stdout = old
	return <-done
}

func TestQuickstartSmoke(t *testing.T) {
	out := captureMain(t)
	for _, want := range []string{
		"== audit with unequal access ==",
		"Axiom 1 (worker fairness in task assignment): checked=1 violations=1",
		"Axiom 5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("quickstart output missing %q", want)
		}
	}
}
