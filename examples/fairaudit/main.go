// Fairaudit: simulate two marketplace configurations — a discriminatory
// stack (requester-centric assignment, fixed pay, cancel-on-quota) and a
// fair stack (fair-round-robin, similarity-fair pay, never cancel) — and
// audit both against all five fairness axioms plus the two transparency
// axioms. This is the §3.3.1 "fairness check benchmark" in miniature.
//
//	go run ./examples/fairaudit
package main

import (
	"fmt"
	"log"

	"repro/crowdfair"
)

func runAndAudit(label string, spec crowdfair.SimulationSpec) {
	res, err := crowdfair.Simulate(spec)
	if err != nil {
		log.Fatal(err)
	}
	m := res.Metrics
	fmt.Printf("== %s ==\n", label)
	fmt.Printf("  submitted %d, mean quality %.3f, retention %.3f, income gini %.3f, interrupted %d\n",
		m.Submitted, m.MeanQuality, m.RetentionRate, m.IncomeGini, m.Interrupted)

	fmt.Println("  fairness audit:")
	for _, rep := range res.Platform.AuditFairness(crowdfair.DefaultAuditConfig()) {
		status := "OK"
		if !rep.Satisfied() {
			status = fmt.Sprintf("VIOLATED (%d violations, rate %.3f)",
				len(rep.Violations), rep.ViolationRate())
		}
		fmt.Printf("    %-55s %s\n", rep.Axiom, status)
	}
	a6, a7 := res.Platform.AuditTransparency(nil)
	fmt.Println("  transparency audit:")
	for _, rep := range []*crowdfair.TransparencyReport{a6, a7} {
		status := "OK"
		if !rep.Satisfied() {
			status = fmt.Sprintf("VIOLATED (%d required fields undisclosed)", len(rep.Missing))
		}
		fmt.Printf("    Axiom %d: %s\n", rep.Axiom, status)
	}
	fmt.Println()
}

func main() {
	fullPolicy, err := crowdfair.ParsePolicy(`policy "everything" {
		disclose requester.hourly_wage to workers always;
		disclose requester.payment_delay to workers always;
		disclose task.recruitment_criteria to workers always;
		disclose task.rejection_criteria to workers always;
		disclose task.evaluation_scheme to workers always;
		disclose task.reward to workers always;
		disclose worker.performance to workers always;
		disclose worker.acceptance_ratio to workers always;
		disclose worker.completed to workers always;
		disclose platform.requester_rating to workers always;
		disclose platform.payment_schedule to workers always;
		disclose platform.auto_approval_delay to workers always;
		disclose platform.worker_progress to workers always;
	}`)
	if err != nil {
		log.Fatal(err)
	}

	runAndAudit("discriminatory stack", crowdfair.SimulationSpec{
		Workers: 120, Tasks: 80, Rounds: 4,
		Assigner:     "requester-centric",
		PayScheme:    "fixed",
		Cancellation: "on-quota",
		OverPublish:  2,
		Seed:         11,
	})

	runAndAudit("fair stack", crowdfair.SimulationSpec{
		Workers: 120, Tasks: 80, Rounds: 4,
		Assigner:     "fair-round-robin",
		PayScheme:    "similarity-fair",
		Cancellation: "never",
		OverPublish:  2,
		Policy:       fullPolicy,
		Seed:         11,
	})
}
