// Transparencydsl: author transparency policies in the declarative language
// of §3.3.2, statically check them, translate them to human-readable
// commitments, score them, and compare two platforms' policies — the
// cross-platform comparison the paper argues declarative rules enable.
//
//	go run ./examples/transparencydsl
package main

import (
	"fmt"
	"log"

	"repro/crowdfair"
)

const openPlatform = `
# An AMT-like platform that committed to worker-facing transparency.
policy "open-platform" {
    disclose requester.hourly_wage to workers always;
    disclose requester.payment_delay to workers always;
    disclose task.recruitment_criteria to workers on task_view;
    disclose task.rejection_criteria to workers on task_view;
    disclose task.reward to workers always;
    disclose worker.performance to workers always;
    disclose worker.acceptance_ratio to workers always;
    disclose platform.requester_rating to public always;
    disclose platform.auto_approval_delay to workers always;
}
`

const cautiousPlatform = `
# A platform that discloses less, later, and conditionally.
policy "cautious-platform" {
    disclose task.reward to workers always;
    disclose requester.hourly_wage to workers when worker.completed >= 50;
    disclose task.rejection_criteria to workers on rejection;
    disclose worker.acceptance_ratio to workers on payment;
    disclose worker.performance to requesters when worker.consent == "granted";
}
`

func main() {
	open, err := crowdfair.ParsePolicy(openPlatform)
	if err != nil {
		log.Fatal(err)
	}
	cautious, err := crowdfair.ParsePolicy(cautiousPlatform)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== human-readable commitments ==")
	fmt.Print(crowdfair.RenderPolicy(open))
	fmt.Println()
	fmt.Print(crowdfair.RenderPolicy(cautious))

	fmt.Println("\n== transparency scores (share of the standard catalogue disclosed to workers) ==")
	fmt.Printf("  %-20s %.2f\n", open.Name, crowdfair.PolicyScore(open))
	fmt.Printf("  %-20s %.2f\n", cautious.Name, crowdfair.PolicyScore(cautious))

	fmt.Println("\n== cross-platform comparison ==")
	fmt.Print(crowdfair.ComparePolicies(open, cautious))

	// A malformed policy is rejected at parse/check time, with position
	// information — the declarative language is typed against the
	// platform's disclosure catalogue.
	fmt.Println("\n== static checking ==")
	_, err = crowdfair.ParsePolicy(`policy "broken" {
		disclose worker.shoe_size to workers always;
	}`)
	fmt.Println("  broken policy rejected:", err)
}
