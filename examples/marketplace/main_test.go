package main

import (
	"bytes"
	"io"
	"os"
	"strings"
	"testing"
)

// captureMain runs main() end-to-end with os.Stdout redirected to a pipe
// and returns everything it printed.
func captureMain(t *testing.T) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	done := make(chan string)
	go func() {
		var b bytes.Buffer
		io.Copy(&b, r)
		done <- b.String()
	}()
	main()
	w.Close()
	os.Stdout = old
	return <-done
}

func TestMarketplaceSmoke(t *testing.T) {
	out := captureMain(t)
	for _, want := range []string{
		"assigner", "retention", "income-gini",
		"self-appointment", "requester-centric", "fair-round-robin",
		"opaque", "full",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("marketplace output missing %q", want)
		}
	}
	if lines := strings.Count(out, "\n"); lines < 7 {
		t.Errorf("marketplace printed %d lines, want header + 6 sweep rows", lines)
	}
}
