// Marketplace: run the full controlled experiment of §4.1 on a simulated
// marketplace — sweep assignment algorithms and transparency levels and
// report the paper's objective measures (contribution quality for fairness,
// worker retention for transparency) side by side.
//
//	go run ./examples/marketplace
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"repro/crowdfair"
)

func main() {
	fullPolicy, err := crowdfair.ParsePolicy(`policy "full" {
		disclose requester.hourly_wage to workers always;
		disclose requester.payment_delay to workers always;
		disclose task.recruitment_criteria to workers always;
		disclose task.rejection_criteria to workers always;
		disclose task.reward to workers always;
		disclose worker.performance to workers always;
		disclose worker.acceptance_ratio to workers always;
		disclose platform.requester_rating to workers always;
	}`)
	if err != nil {
		log.Fatal(err)
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "assigner\tpolicy\tretention\tmean-quality\tutility\tincome-gini\taxiom1-violations")

	for _, assigner := range []string{"self-appointment", "requester-centric", "fair-round-robin"} {
		for _, policy := range []struct {
			name string
			pol  *crowdfair.Policy
		}{{"opaque", nil}, {"full", fullPolicy}} {
			res, err := crowdfair.Simulate(crowdfair.SimulationSpec{
				Workers: 100, Tasks: 160, Rounds: 4,
				Assigner: assigner,
				Policy:   policy.pol,
				// A heterogeneous population under a strict acceptance bar:
				// this is where assignment and transparency choices bite.
				AcceptanceMean: 0.6, AcceptanceSpread: 0.3,
				AcceptThreshold: 0.62,
				Seed:            7,
			})
			if err != nil {
				log.Fatal(err)
			}
			m := res.Metrics
			reports := res.Platform.AuditFairness(crowdfair.DefaultAuditConfig())
			fmt.Fprintf(tw, "%s\t%s\t%.3f\t%.3f\t%.1f\t%.3f\t%d\n",
				assigner, policy.name, m.RetentionRate, m.MeanQuality,
				m.RequesterUtility, m.IncomeGini, len(reports[0].Violations))
		}
	}
	tw.Flush()

	fmt.Println("\nReading the table: requester-centric assignment cherry-picks competent")
	fmt.Println("workers (higher mean quality) at the cost of hundreds of Axiom-1 access")
	fmt.Println("violations; under the fair mechanisms, full transparency is what lifts")
	fmt.Println("worker retention (§4.1's objective measure for transparency).")
}
