// Workertools: rebuild the worker-made transparency infrastructure the
// paper surveys in §2.2 — Turkbench-style expected hourly wages and
// Turkopticon-style requester reviews — as native platform features
// computed from the platform's own event trace.
//
// The example records a trace with two requesters of very different
// conduct: "fairco" pays every submission promptly, "grinder" rejects
// half the work and pays less. The wage report and the review board make
// the difference visible to workers before they accept a task.
//
//	go run ./examples/workertools
package main

import (
	"fmt"
	"log"

	"repro/crowdfair"
	"repro/internal/eventlog"
)

func main() {
	u := crowdfair.NewUniverse("labeling")
	p := crowdfair.NewPlatform(u)

	for _, r := range []crowdfair.RequesterID{"fairco", "grinder"} {
		if err := p.AddRequester(&crowdfair.Requester{ID: r}); err != nil {
			log.Fatal(err)
		}
	}
	const workers = 20
	for i := 0; i < workers; i++ {
		w := &crowdfair.Worker{
			ID:     crowdfair.WorkerID(fmt.Sprintf("w%02d", i)),
			Skills: u.MustVector("labeling"),
		}
		if err := p.AddWorker(w); err != nil {
			log.Fatal(err)
		}
	}

	// Each requester posts a batch; every worker completes one task for
	// each requester. fairco pays 1.2 for ~5 ticks of work and accepts
	// everything; grinder pays 0.6 and rejects every second submission.
	now := int64(1)
	appendEvent := func(e crowdfair.Event) {
		e.Time = now
		if err := p.AppendEvent(e); err != nil {
			log.Fatal(err)
		}
	}
	for ti, req := range []crowdfair.RequesterID{"fairco", "grinder"} {
		for i := 0; i < workers; i++ {
			taskID := crowdfair.TaskID(fmt.Sprintf("%s-t%02d", req, i))
			worker := crowdfair.WorkerID(fmt.Sprintf("w%02d", i))
			contribution := crowdfair.ContributionID(fmt.Sprintf("c-%s-%02d", req, i))
			appendEvent(crowdfair.Event{Type: eventlog.TaskPosted, Task: taskID, Requester: req})
			appendEvent(crowdfair.Event{Type: eventlog.TaskStarted, Task: taskID, Worker: worker})
			now += 5 // five ticks of work
			appendEvent(crowdfair.Event{Type: eventlog.TaskSubmitted, Task: taskID, Worker: worker, Contribution: contribution})
			rejected := ti == 1 && i%2 == 1 // grinder rejects odd workers
			if rejected {
				appendEvent(crowdfair.Event{Type: eventlog.ContributionRejected, Task: taskID, Worker: worker, Contribution: contribution, Requester: req})
			} else {
				amount := 1.2
				if ti == 1 {
					amount = 0.6
				}
				appendEvent(crowdfair.Event{Type: eventlog.PaymentIssued, Task: taskID, Worker: worker, Contribution: contribution, Amount: amount})
			}
			now++
		}
	}

	fmt.Println("== Turkbench: estimated hourly wages per requester ==")
	report := p.WageReport()
	for _, req := range p.RankRequestersByWage() {
		est := report.ByRequester[req]
		fmt.Printf("  %-8s %s\n", req, est)
	}

	fmt.Println("\n== Turkopticon: review board synthesised from worker experience ==")
	board, err := p.ReviewsFromTrace(2.5 /* fair hourly wage benchmark */)
	if err != nil {
		log.Fatal(err)
	}
	for _, agg := range board.Rank() {
		fmt.Println(" ", agg)
	}

	fmt.Println("\nWorkers browsing with these tools see grinder's true wage and")
	fmt.Println("rejection behaviour before accepting — the transparency the paper")
	fmt.Println("says should come from the platform, not from browser plug-ins.")
}
