// Package repro's root benchmark suite regenerates every experiment of
// DESIGN.md (E1–E9) under testing.B, plus micro-benchmarks for the hot
// primitives (similarity measures, candidate-pair generation, assignment,
// rule evaluation) and the incremental-audit comparison
// (BenchmarkAuditFullRescan vs BenchmarkAuditIncremental). Run with:
//
//	go test -bench=. -benchmem
//
// The human-readable experiment tables come from cmd/benchrunner; these
// benchmarks measure the cost of regenerating them and of the underlying
// kernels.
package repro

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/assign"
	"repro/internal/audit"
	"repro/internal/eventlog"
	"repro/internal/experiments"
	"repro/internal/fairness"
	"repro/internal/model"
	"repro/internal/pay"
	"repro/internal/sim"
	"repro/internal/similarity"
	"repro/internal/stats"
	"repro/internal/store"
	"repro/internal/sweep"
	"repro/internal/transparency"
	"repro/internal/workload"
)

const benchSeed = 42

// --- Sweep engine: serial vs parallel over the same multi-seed grid ---

// sweepBenchGrid is a multi-seed E1–E8 sweep at reduced scale: large enough
// that per-job work dominates pool overhead, small enough to iterate under
// the benchmark harness. On a 4+ core machine BenchmarkSweepParallel should
// finish the grid at least 2× faster than BenchmarkSweepSerial; the outputs
// are byte-identical either way (see sweep.TestSweepDeterministic).
func sweepBenchGrid() sweep.Grid {
	return sweep.Grid{
		Experiments: []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8"},
		Scales:      []float64{0.25},
		Seeds:       []uint64{1, 2, 3, 4},
	}
}

func benchmarkSweep(b *testing.B, parallelism int) {
	grid := sweepBenchGrid()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sweep.Run(grid, sweep.Options{Parallelism: parallelism}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSweepSerial(b *testing.B)   { benchmarkSweep(b, 1) }
func BenchmarkSweepParallel(b *testing.B) { benchmarkSweep(b, 0) }

// --- One benchmark per experiment table (E1–E8) ---

func BenchmarkE1Assignment(b *testing.B) {
	p := experiments.E1Params{Workers: 200, Tasks: 100, Seed: benchSeed}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		experiments.E1Assignment(p)
	}
}

func BenchmarkE2Visibility(b *testing.B) {
	p := experiments.E2Params{Workers: 150, Tasks: 60, Seed: benchSeed}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		experiments.E2Visibility(p)
	}
}

func BenchmarkE3Compensation(b *testing.B) {
	p := experiments.E3Params{Contributors: 20, Clusters: 3, Tasks: 10, Seed: benchSeed}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		experiments.E3Compensation(p)
	}
}

func BenchmarkE4Detection(b *testing.B) {
	p := experiments.E4Params{
		Workers: 100, Questions: 40,
		SpamFractions: []float64{0.2, 0.4}, Threshold: 0.5, Seed: benchSeed,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		experiments.E4Detection(p)
	}
}

func BenchmarkE5Completion(b *testing.B) {
	p := experiments.E5Params{
		WorkersPerTask: 10, Tasks: 20, OverPublish: []float64{1.0, 2.0}, Seed: benchSeed,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		experiments.E5Completion(p)
	}
}

func BenchmarkE6Retention(b *testing.B) {
	p := experiments.E6Params{Workers: 30, Tasks: 60, Rounds: 3, Seed: benchSeed}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		experiments.E6Retention(p)
	}
}

func BenchmarkE7CheckScale(b *testing.B) {
	p := experiments.E7Params{Sizes: []int{100, 300}, Seed: benchSeed}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		experiments.E7CheckScale(p)
	}
}

func BenchmarkE8RuleEngine(b *testing.B) {
	p := experiments.E8Params{RuleCounts: []int{1, 20, 50}, Evaluations: 200, Seed: benchSeed}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		experiments.E8RuleEngine(p)
	}
}

func BenchmarkE9Ablations(b *testing.B) {
	p := experiments.E9Params{Workers: 80, Tasks: 40, Lambdas: []float64{0, 0.5, 1}, Seed: benchSeed}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		experiments.E9Ablations(p)
	}
}

func BenchmarkRepairAxiom1(b *testing.B) {
	pop, batch, st := benchEnv(200, 100)
	res, err := (assign.RequesterCentric{}).Assign(&assign.Problem{
		Workers: pop.Workers, Tasks: batch.Tasks, Capacity: 2,
	})
	if err != nil {
		b.Fatal(err)
	}
	cfg := fairness.DefaultConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fairness.RepairAxiom1(st, res.Offers, cfg)
	}
}

// --- Incremental audit engine: mutate-then-audit, full rescan vs delta ---

// auditBenchTrace builds the E11-style monitoring workload: a clustered
// population with biased offers, i.e. standing Axiom 1 material.
func auditBenchTrace(b *testing.B, workers int) (*store.Store, *eventlog.Log, *workload.Population, *workload.Batch, *stats.RNG) {
	b.Helper()
	rng := stats.NewRNG(benchSeed)
	pop := workload.GeneratePopulation(workload.PopulationSpec{
		Workers: workers, Archetypes: 8,
	}, rng.Split())
	batch := workload.GenerateTasks(workload.TaskSpec{Tasks: workers / 4, Quota: 2}, pop, rng.Split())
	st := store.New(pop.Universe)
	for _, r := range batch.Requesters {
		if err := st.PutRequester(r); err != nil {
			b.Fatal(err)
		}
	}
	for _, w := range pop.Workers {
		if err := st.PutWorker(w); err != nil {
			b.Fatal(err)
		}
	}
	for _, t := range batch.Tasks {
		if err := st.PutTask(t); err != nil {
			b.Fatal(err)
		}
	}
	log := eventlog.New()
	for wi, w := range pop.Workers {
		if wi%53 == 0 {
			continue
		}
		for _, t := range batch.Tasks {
			if w.Skills.Covers(t.Skills) {
				log.MustAppend(eventlog.Event{Type: eventlog.TaskOffered, Worker: w.ID, Task: t.ID})
			}
		}
	}
	return st, log, pop, batch, rng
}

// benchmarkMutateThenAudit dirties ~1% of the workers (attribute updates
// plus fresh offers) per iteration, then audits all five axioms — either
// with the from-scratch full rescan or through the incremental engine. The
// two must report identical violations; the incremental mode is the
// tentpole's headline number (≥5× at 1k workers / 1% dirty).
func benchmarkMutateThenAudit(b *testing.B, workers int, incremental bool) {
	st, log, pop, batch, rng := auditBenchTrace(b, workers)
	cfg := fairness.DefaultConfig()
	var eng *audit.Engine
	if incremental {
		eng = audit.New(st, log, cfg)
		eng.Audit() // cold start outside the timed loop
	}
	nDirty := workers / 100
	if nDirty < 1 {
		nDirty = 1
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < nDirty; j++ {
			w, err := st.Worker(pop.Workers[rng.Intn(len(pop.Workers))].ID)
			if err != nil {
				b.Fatal(err)
			}
			w.Computed[model.AttrAcceptanceRatio] = model.Num(rng.Float64())
			if err := st.UpdateWorker(w); err != nil {
				b.Fatal(err)
			}
			log.MustAppend(eventlog.Event{
				Type:   eventlog.TaskOffered,
				Worker: pop.Workers[rng.Intn(len(pop.Workers))].ID,
				Task:   batch.Tasks[rng.Intn(len(batch.Tasks))].ID,
			})
		}
		if incremental {
			eng.Audit()
		} else {
			fairness.CheckAll(st, log, cfg)
		}
	}
}

func BenchmarkAuditFullRescan(b *testing.B)     { benchmarkMutateThenAudit(b, 1000, false) }
func BenchmarkAuditIncremental(b *testing.B)    { benchmarkMutateThenAudit(b, 1000, true) }
func BenchmarkAuditFullRescan300(b *testing.B)  { benchmarkMutateThenAudit(b, 300, false) }
func BenchmarkAuditIncremental300(b *testing.B) { benchmarkMutateThenAudit(b, 300, true) }

// --- Sharded store: contended mutation, single RWMutex vs hash shards ---

// contendedStoreEnv builds a populated store at the given shard count plus
// disjoint per-goroutine worker groups, so the benchmark contends on shard
// locks rather than on individual entities.
func contendedStoreEnv(b *testing.B, shards, goroutines int) (*store.Store, *eventlog.Log, [][]*model.Worker) {
	b.Helper()
	rng := stats.NewRNG(benchSeed)
	pop := workload.GeneratePopulation(workload.PopulationSpec{
		Workers: 2048, Archetypes: 8,
	}, rng.Split())
	st := store.NewSharded(pop.Universe, shards)
	if err := st.BulkPutWorkers(pop.Workers); err != nil {
		b.Fatal(err)
	}
	groups := make([][]*model.Worker, goroutines)
	for i, w := range pop.Workers {
		groups[i%goroutines] = append(groups[i%goroutines], w)
	}
	return st, eventlog.New(), groups
}

// benchmarkStoreContendedMutate measures raw mutation throughput with 8
// goroutines hammering UpdateWorker, optionally with a concurrent
// incremental auditor sampling the changelog — the workload the tentpole
// shards the store for. At shards=1 this is exactly the old single-RWMutex
// layout; the sharded runs must beat it by ≥3× on a machine with 8+ cores
// (on fewer cores the goroutines timeshare and the gap narrows to the
// reduced lock-handoff overhead).
func benchmarkStoreContendedMutate(b *testing.B, shards int, withAudit bool) {
	const goroutines = 8
	st, log, groups := contendedStoreEnv(b, shards, goroutines)
	stop := make(chan struct{})
	auditDone := make(chan struct{})
	if withAudit {
		eng := audit.New(st, log, fairness.DefaultConfig())
		eng.Audit() // cold start outside the timed loop
		go func() {
			defer close(auditDone)
			for {
				select {
				case <-stop:
					return
				default:
					eng.Audit()
				}
			}
		}()
	}
	perG := b.N/goroutines + 1
	b.ReportAllocs()
	b.ResetTimer()
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ws := groups[g]
			for i := 0; i < perG; i++ {
				w := ws[i%len(ws)]
				w.Computed[model.AttrAcceptanceRatio] = model.Num(float64(i%100) / 100)
				if err := st.UpdateWorker(w); err != nil {
					b.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	b.StopTimer()
	if withAudit {
		close(stop)
		<-auditDone
	}
}

func BenchmarkStoreContendedMutate1Shard(b *testing.B) { benchmarkStoreContendedMutate(b, 1, false) }
func BenchmarkStoreContendedMutateSharded(b *testing.B) {
	benchmarkStoreContendedMutate(b, store.DefaultShardCount, false)
}
func BenchmarkStoreContendedMutateAudit1Shard(b *testing.B) {
	benchmarkStoreContendedMutate(b, 1, true)
}
func BenchmarkStoreContendedMutateAuditSharded(b *testing.B) {
	benchmarkStoreContendedMutate(b, store.DefaultShardCount, true)
}

// --- Kernel micro-benchmarks ---

func benchEnv(workers, tasks int) (*workload.Population, *workload.Batch, *store.Store) {
	rng := stats.NewRNG(benchSeed)
	pop := workload.GeneratePopulation(workload.PopulationSpec{Workers: workers}, rng.Split())
	batch := workload.GenerateTasks(workload.TaskSpec{Tasks: tasks, Requesters: 5, Quota: 2}, pop, rng.Split())
	st := store.New(pop.Universe)
	for _, r := range batch.Requesters {
		if err := st.PutRequester(r); err != nil {
			panic(err)
		}
	}
	for _, w := range pop.Workers {
		if err := st.PutWorker(w); err != nil {
			panic(err)
		}
	}
	for _, t := range batch.Tasks {
		if err := st.PutTask(t); err != nil {
			panic(err)
		}
	}
	return pop, batch, st
}

func BenchmarkAssigners(b *testing.B) {
	pop, batch, _ := benchEnv(200, 100)
	for _, a := range assign.All() {
		b.Run(a.Name(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_, err := a.Assign(&assign.Problem{
					Workers: pop.Workers, Tasks: batch.Tasks, Capacity: 2,
					RNG: stats.NewRNG(benchSeed),
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkHungarian(b *testing.B) {
	for _, n := range []int{10, 50, 100} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := stats.NewRNG(benchSeed)
			gain := make([][]float64, n)
			for i := range gain {
				gain[i] = make([]float64, n)
				for j := range gain[i] {
					gain[i][j] = rng.Float64()
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				assign.MaxWeightMatching(gain)
			}
		})
	}
}

func BenchmarkCandidatePairs(b *testing.B) {
	_, _, st := benchEnv(1000, 100)
	b.Run("indexed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			st.CandidateWorkerPairs()
		}
	})
}

func BenchmarkAxiom1Check(b *testing.B) {
	pop, batch, st := benchEnv(400, 100)
	res, err := (assign.FairRoundRobin{}).Assign(&assign.Problem{
		Workers: pop.Workers, Tasks: batch.Tasks, Capacity: 2,
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name       string
		exhaustive bool
	}{{"indexed", false}, {"exhaustive", true}} {
		b.Run(mode.name, func(b *testing.B) {
			cfg := fairness.DefaultConfig()
			cfg.Exhaustive = mode.exhaustive
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				fairness.Axiom1FromOffers(st, res.Offers, cfg)
			}
		})
	}
}

func BenchmarkSimilarityMeasures(b *testing.B) {
	u := model.MustUniverse("a", "b", "c", "d", "e", "f", "g", "h")
	x := u.MustVector("a", "c", "e", "g")
	y := u.MustVector("a", "c", "f", "h")
	for _, m := range []similarity.VectorMeasure{
		similarity.MeasureCosine, similarity.MeasureJaccard, similarity.MeasureHamming,
	} {
		b.Run(m.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m.Func(x, y)
			}
		})
	}
}

func BenchmarkNGramSimilarity(b *testing.B) {
	a := "the quick brown fox jumps over the lazy dog near the river bank at dawn"
	c := "the quick brown fox leaps over the lazy cat near the river bend at dusk"
	b.Run("profile-build", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			similarity.NewNGramProfile(a, 3)
		}
	})
	b.Run("compare", func(b *testing.B) {
		pa := similarity.NewNGramProfile(a, 3)
		pc := similarity.NewNGramProfile(c, 3)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			pa.Similarity(pc)
		}
	})
}

func BenchmarkPaySchemes(b *testing.B) {
	rng := stats.NewRNG(benchSeed)
	pop := workload.GeneratePopulation(workload.PopulationSpec{Workers: 30}, rng.Split())
	batch := workload.GenerateTasks(workload.TaskSpec{Tasks: 1}, pop, rng.Split())
	ids := make([]model.WorkerID, len(pop.Workers))
	for i, w := range pop.Workers {
		ids[i] = w.ID
	}
	contribs, _ := workload.GenerateContributions(workload.ContributionSpec{
		Contributors: 30, Clusters: 3, QualityJitter: 0.1,
	}, batch.Tasks[0], ids, rng.Split())
	for _, s := range pay.Schemes() {
		b.Run(s.Name(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s.Pay(batch.Tasks[0], contribs)
			}
		})
	}
}

func BenchmarkPolicyParse(b *testing.B) {
	src := experiments.SyntheticPolicy(50).String()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := transparency.Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPolicyEvaluate(b *testing.B) {
	pol := experiments.SyntheticPolicy(50)
	cat := transparency.StandardCatalogue()
	ctx := experiments.E8Context()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := pol.Evaluate(cat, ctx, transparency.AudienceWorkers, transparency.TriggerTaskView); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMarketplaceRound(b *testing.B) {
	rng := stats.NewRNG(benchSeed)
	pop := workload.GeneratePopulation(workload.PopulationSpec{Workers: 100}, rng.Split())
	batch := workload.GenerateTasks(workload.TaskSpec{Tasks: 50, Quota: 2}, pop, rng.Split())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, err := sim.Run(sim.Config{
			Population: pop, Batch: batch, Rounds: 1, Seed: benchSeed,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStoreInserts(b *testing.B) {
	u := model.MustUniverse("a", "b", "c")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		st := store.New(u)
		for j := 0; j < 100; j++ {
			w := &model.Worker{
				ID:     model.WorkerID(fmt.Sprintf("w%04d", j)),
				Skills: u.MustVector("a"),
			}
			if err := st.PutWorker(w); err != nil {
				b.Fatal(err)
			}
		}
	}
}
