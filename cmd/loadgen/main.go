// Command loadgen replays seed-deterministic request mixes against a
// running crowdserve instance and judges the measured latencies against a
// declared SLO.
//
// Usage:
//
//	loadgen -base http://localhost:8080 [-seed 1] [-requests 5000] [-mode closed -c 32]
//	loadgen -base http://localhost:8080 -mode open -rate 2000
//	loadgen -base http://localhost:8080 -capacity -lorate 200 -hirate 20000 [-iters 7]
//	loadgen ... -json
//
// The plan (seed entities and every request payload) is a pure function of
// -seed and the mix sizes: two runs with equal flags issue byte-identical
// request sequences. Closed mode drives -c virtual clients back-to-back;
// open mode fires requests at seeded Poisson instants at -rate req/s and
// charges any start lag to the server (coordinated-omission aware).
// Capacity mode binary-searches the highest open-loop rate whose run meets
// the SLO (-slop99, -sloerr), seeding a fresh id namespace per probe via
// derived seeds.
//
// The seed phase POSTs the plan's requesters, workers, and tasks before
// measurement; rerunning against a server that already holds them fails
// with 409s — point loadgen at a fresh server (or a fresh -seed).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/load"
	"repro/internal/stats"
	"repro/internal/workload"
)

func main() {
	base := flag.String("base", "http://localhost:8080", "crowdserve base URL")
	seed := flag.Uint64("seed", 1, "plan seed")
	requests := flag.Int("requests", 5000, "measured request count")
	workers := flag.Int("workers", 200, "seed-phase worker count")
	tasks := flag.Int("tasks", 60, "seed-phase task count")
	mode := flag.String("mode", "closed", "arrival mode: closed|open")
	conc := flag.Int("c", 32, "closed-loop virtual clients")
	rate := flag.Float64("rate", 1000, "open-loop offered rate (req/s)")
	capacity := flag.Bool("capacity", false, "binary-search the max sustainable open-loop rate")
	loRate := flag.Float64("lorate", 200, "capacity search lower bound (req/s)")
	hiRate := flag.Float64("hirate", 20000, "capacity search upper bound (req/s)")
	iters := flag.Int("iters", 6, "capacity search bisection rounds")
	sloP99 := flag.Duration("slop99", 50*time.Millisecond, "SLO: p99 latency bound per endpoint")
	sloErr := flag.Float64("sloerr", 0, "SLO: max non-429 error rate")
	sloShed := flag.Float64("sloshed", 0.01, "SLO: max shed (429) rate")
	maxConns := flag.Int("maxconns", 512, "client connection pool bound")
	asJSON := flag.Bool("json", false, "emit machine-readable JSON")
	flag.Parse()

	slo := &load.SLO{P99: *sloP99, MaxErrorRate: *sloErr, MaxShedRate: *sloShed}
	spec := load.MixSpec{Workers: *workers, Tasks: *tasks, Requests: *requests}
	// The bounded pool keeps over-capacity open-loop runs measuring the
	// server's admission control rather than a client-side dial storm.
	runner := &load.Runner{Base: *base, Client: load.PooledClient(*maxConns)}

	if *capacity {
		trialNo := 0
		cr := load.SearchCapacity(*loRate, *hiRate, *iters, func(r float64) *load.Result {
			// Each probe runs in its own id namespace and derived seed, so
			// probes against one long-lived server never collide.
			trialNo++
			tspec := spec
			tspec.Prefix = fmt.Sprintf("p%d-", trialNo)
			p := load.BuildPlan(tspec, stats.DeriveSeed(*seed, 1, uint64(trialNo)))
			if err := runner.SeedHTTP(p); err != nil {
				fatal(err)
			}
			sched := workload.OpenLoopPoisson(r, len(p.Requests), stats.NewRNG(stats.DeriveSeed(*seed, 2, uint64(trialNo))))
			res := runner.Run(p, sched, slo)
			fmt.Fprintf(os.Stderr, "loadgen: probe %.0f req/s: pass=%v shed=%.1f%%\n", r, res.SLOPass, 100*res.ShedRate)
			return res
		})
		emit(cr, *asJSON, func() {
			fmt.Printf("capacity: sustainable %.0f req/s (first failing %.0f) over %d trials, SLO p99<=%v\n",
				cr.SustainableRate, cr.FirstFailingRate, len(cr.Trials), *sloP99)
		})
		return
	}

	p := load.BuildPlan(spec, *seed)
	if err := runner.SeedHTTP(p); err != nil {
		fatal(err)
	}
	var sched workload.ArrivalSchedule
	switch *mode {
	case "closed":
		sched = workload.ClosedLoop(*conc)
	case "open":
		sched = workload.OpenLoopPoisson(*rate, len(p.Requests), stats.NewRNG(stats.DeriveSeed(*seed, 2, 0)))
	default:
		fatal(fmt.Errorf("unknown -mode %q (want closed|open)", *mode))
	}
	res := runner.Run(p, sched, slo)
	emit(res, *asJSON, func() {
		fmt.Printf("%s: %d requests in %.0fms (%.0f req/s achieved), shed %.2f%%, errors %.2f%%, SLO pass=%v\n",
			res.Schedule, res.Requests, res.WallMS, res.AchievedRate, 100*res.ShedRate, 100*res.ErrorRate, res.SLOPass)
		for ep, es := range res.Endpoints {
			fmt.Printf("  %-26s n=%-6d ok=%-6d shed=%-5d err=%-4d p50=%.2fms p95=%.2fms p99=%.2fms max=%.2fms\n",
				ep, es.Requests, es.OK, es.Shed, es.Errors, es.P50MS, es.P95MS, es.P99MS, es.MaxMS)
		}
	})
	if !res.SLOPass {
		os.Exit(2)
	}
}

func emit(v any, asJSON bool, human func()) {
	if asJSON {
		b, err := json.MarshalIndent(v, "", "  ")
		if err != nil {
			fatal(err)
		}
		os.Stdout.Write(append(b, '\n'))
		return
	}
	human()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "loadgen:", err)
	os.Exit(1)
}
