// Command crowdserve runs the crowdfair HTTP serving front-end: the
// coalescing, admission-controlled API server of internal/serve over an
// in-memory or durable platform.
//
// Usage:
//
//	crowdserve [-addr :8080] [-skills 12]
//	crowdserve -dir /var/lib/crowdfair [-walsync interval:5ms] [-maxauditlag 50000]
//
// With -dir the platform is rooted in a write-ahead-logged directory
// (created if absent, recovered if not) and every coalesced mutation batch
// rides the group-commit WAL under the chosen -walsync policy; without it
// the platform is purely in-memory. The server sheds mutations with HTTP
// 429 + Retry-After once the dispatcher queue is full (-maxqueue) or the
// incremental auditor trails the store by more than -maxauditlag versions.
// GET /v1/audit serves the cached version-stamped audit snapshot refreshed
// every -auditevery; /statsz, /debug/vars, and /debug/pprof expose the
// serving counters and profiles.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/crowdfair"
	"repro/internal/serve"
	"repro/internal/wal"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	dir := flag.String("dir", "", "platform directory (empty: in-memory, no durability)")
	walSync := flag.String("walsync", "interval:5ms", "WAL fsync policy with -dir (never|rotate|interval[:dur]|always)")
	skills := flag.Int("skills", 12, "skill-universe size when creating a fresh platform")
	batchMax := flag.Int("batchmax", 256, "max mutations per coalesced batch")
	linger := flag.Duration("linger", 0, "dispatcher wait for batch laggards (0: natural batching)")
	maxQueue := flag.Int("maxqueue", 4096, "mutation queue bound; arrivals beyond it shed with 429")
	maxAuditLag := flag.Uint64("maxauditlag", 0, "shed mutations once the audit snapshot trails by more versions than this (0: disabled)")
	retryAfter := flag.Duration("retryafter", 500*time.Millisecond, "Retry-After hint sent with 429s")
	auditEvery := flag.Duration("auditevery", 100*time.Millisecond, "cadence of the background incremental audit")
	flag.Parse()

	u := universe(*skills)
	auditCfg := crowdfair.DefaultAuditConfig()
	var (
		p   *crowdfair.Platform
		err error
	)
	if *dir != "" {
		sync, perr := wal.ParseSyncPolicy(*walSync)
		if perr != nil {
			fatal(perr)
		}
		p, err = crowdfair.OpenPlatformWAL(*dir, u, auditCfg, crowdfair.WALOptions{Sync: sync})
		if err != nil {
			fatal(err)
		}
		defer p.Close()
	} else {
		p = crowdfair.NewPlatform(u)
	}

	s := serve.New(serve.Config{
		Platform:    p,
		Audit:       auditCfg,
		BatchMax:    *batchMax,
		Linger:      *linger,
		MaxQueue:    *maxQueue,
		MaxAuditLag: *maxAuditLag,
		RetryAfter:  *retryAfter,
		AuditEvery:  *auditEvery,
	})
	s.Start()
	defer s.Stop()

	hs := &http.Server{Addr: *addr, Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "crowdserve: listening on %s (durable=%v)\n", *addr, p.Durable())

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		fatal(err)
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "crowdserve: %v, draining\n", sig)
		_ = hs.Close()
	}
}

// universe builds the skill universe fresh platforms are created over; it
// matches the "skill-%02d" naming of internal/workload so loadgen plans
// line up with a default server.
func universe(n int) *crowdfair.Universe {
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("skill-%02d", i)
	}
	return crowdfair.NewUniverse(names...)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "crowdserve:", err)
	os.Exit(1)
}
