// Command crowdfair is the CLI front-end of the library: it runs
// marketplace simulations, audits traces against the fairness and
// transparency axioms, and works with declarative transparency policies.
//
// Subcommands:
//
//	crowdfair simulate -workers 200 -tasks 100 -assigner requester-centric -policy policy.tp
//	crowdfair audit -trace trace.jsonl -snapshot snapshot.json
//	crowdfair policy -render policy.tp
//	crowdfair policy -compare a.tp b.tp
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/crowdfair"
	"repro/internal/model"
	"repro/internal/store"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "simulate":
		err = runSimulate(os.Args[2:])
	case "audit":
		err = runAudit(os.Args[2:])
	case "policy":
		err = runPolicy(os.Args[2:])
	case "wages":
		err = runWages(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "crowdfair:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  crowdfair simulate [-workers N] [-tasks N] [-rounds N] [-assigner NAME] [-pay NAME] [-cancel NAME] [-policy FILE] [-seed N] [-trace FILE]
  crowdfair audit -trace FILE [-snapshot FILE]
  crowdfair policy (-render FILE | -compare FILE FILE | -check FILE)
  crowdfair wages -trace FILE`)
	fmt.Fprintf(os.Stderr, "\nassigners: %s\npay schemes: %s\ncancellation: never, grace, on-quota\n",
		strings.Join(crowdfair.AssignerNames(), ", "),
		strings.Join(crowdfair.PaySchemeNames(), ", "))
}

func runSimulate(args []string) error {
	fs := flag.NewFlagSet("simulate", flag.ExitOnError)
	workers := fs.Int("workers", 200, "number of workers")
	tasks := fs.Int("tasks", 100, "number of tasks")
	rounds := fs.Int("rounds", 5, "assignment rounds")
	assigner := fs.String("assigner", "fair-round-robin", "assignment algorithm")
	payScheme := fs.String("pay", "fixed", "compensation scheme")
	cancel := fs.String("cancel", "never", "cancellation policy")
	policyFile := fs.String("policy", "", "transparency policy file (empty = opaque)")
	seed := fs.Uint64("seed", 42, "seed")
	traceOut := fs.String("trace", "", "write the event trace to this file")
	fs.Parse(args)

	spec := crowdfair.SimulationSpec{
		Workers: *workers, Tasks: *tasks, Rounds: *rounds,
		Assigner: *assigner, PayScheme: *payScheme, Cancellation: *cancel,
		Seed: *seed,
	}
	if *policyFile != "" {
		src, err := os.ReadFile(*policyFile)
		if err != nil {
			return err
		}
		pol, err := crowdfair.ParsePolicy(string(src))
		if err != nil {
			return err
		}
		spec.Policy = pol
	}
	res, err := crowdfair.Simulate(spec)
	if err != nil {
		return err
	}
	m := res.Metrics
	fmt.Printf("simulated: %d submissions, mean quality %.3f, retention %.3f, accepted %.3f\n",
		m.Submitted, m.MeanQuality, m.RetentionRate, m.AcceptedRate)
	fmt.Printf("requester utility %.2f, total paid %.2f, income gini %.3f, interrupted %d\n",
		m.RequesterUtility, m.TotalPaid, m.IncomeGini, m.Interrupted)

	fmt.Println("\nfairness audit:")
	for _, rep := range res.Platform.AuditFairness(crowdfair.DefaultAuditConfig()) {
		fmt.Println(" ", rep)
	}
	a6, a7 := res.Platform.AuditTransparency(nil)
	fmt.Println("transparency audit:")
	fmt.Println(" ", a6)
	fmt.Println(" ", a7)

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := res.Platform.WriteTrace(f); err != nil {
			return err
		}
		fmt.Println("trace written to", *traceOut)
	}
	return nil
}

func runAudit(args []string) error {
	fs := flag.NewFlagSet("audit", flag.ExitOnError)
	traceFile := fs.String("trace", "", "event trace (JSON lines)")
	snapFile := fs.String("snapshot", "", "platform snapshot (JSON); optional")
	fs.Parse(args)
	if *traceFile == "" {
		return fmt.Errorf("audit: -trace is required")
	}

	var p *crowdfair.Platform
	if *snapFile != "" {
		data, err := os.ReadFile(*snapFile)
		if err != nil {
			return err
		}
		snap, err := model.DecodeSnapshot(data)
		if err != nil {
			return err
		}
		st, err := store.FromSnapshot(snap)
		if err != nil {
			return err
		}
		u := st.Universe()
		p = crowdfair.NewPlatform(u)
		// Rebuild the platform over the snapshot store by reloading it.
		for _, r := range snap.Requesters {
			if err := p.AddRequester(r); err != nil {
				return err
			}
		}
		for _, w := range snap.Workers {
			if err := p.AddWorker(w); err != nil {
				return err
			}
		}
		for _, t := range snap.Tasks {
			if err := p.PostTask(t); err != nil {
				return err
			}
		}
		for _, c := range snap.Contributions {
			if err := p.RecordContribution(c); err != nil {
				return err
			}
		}
	} else {
		p = crowdfair.NewPlatform(crowdfair.NewUniverse("unspecified"))
	}

	f, err := os.Open(*traceFile)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := p.LoadTrace(f); err != nil {
		return err
	}

	fmt.Println("fairness audit:")
	for _, rep := range p.AuditFairness(crowdfair.DefaultAuditConfig()) {
		fmt.Println(" ", rep)
		for i, v := range rep.Violations {
			if i == 5 {
				fmt.Printf("    ... and %d more\n", len(rep.Violations)-5)
				break
			}
			fmt.Println("   ", v)
		}
	}
	a6, a7 := p.AuditTransparency(nil)
	fmt.Println("transparency audit:")
	fmt.Println(" ", a6)
	fmt.Println(" ", a7)
	return nil
}

func runPolicy(args []string) error {
	fs := flag.NewFlagSet("policy", flag.ExitOnError)
	render := fs.String("render", "", "render a policy file to human-readable text")
	check := fs.String("check", "", "statically check a policy file")
	compare := fs.Bool("compare", false, "compare two policy files (positional args)")
	fs.Parse(args)

	switch {
	case *render != "":
		pol, err := loadPolicy(*render)
		if err != nil {
			return err
		}
		fmt.Print(crowdfair.RenderPolicy(pol))
		fmt.Printf("transparency score: %.2f\n", crowdfair.PolicyScore(pol))
		return nil
	case *check != "":
		pol, err := loadPolicy(*check)
		if err != nil {
			return err
		}
		warnings := crowdfair.LintPolicy(pol)
		for _, w := range warnings {
			fmt.Println("warning:", w)
		}
		if len(warnings) == 0 {
			fmt.Println("policy ok")
		} else {
			fmt.Printf("policy ok with %d warning(s)\n", len(warnings))
		}
		return nil
	case *compare:
		rest := fs.Args()
		if len(rest) != 2 {
			return fmt.Errorf("policy -compare needs exactly two files")
		}
		a, err := loadPolicy(rest[0])
		if err != nil {
			return err
		}
		b, err := loadPolicy(rest[1])
		if err != nil {
			return err
		}
		fmt.Print(crowdfair.ComparePolicies(a, b))
		return nil
	default:
		return fmt.Errorf("policy: one of -render, -check, -compare is required")
	}
}

func runWages(args []string) error {
	fs := flag.NewFlagSet("wages", flag.ExitOnError)
	traceFile := fs.String("trace", "", "event trace (JSON lines)")
	fs.Parse(args)
	if *traceFile == "" {
		return fmt.Errorf("wages: -trace is required")
	}
	p := crowdfair.NewPlatform(crowdfair.NewUniverse("unspecified"))
	f, err := os.Open(*traceFile)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := p.LoadTrace(f); err != nil {
		return err
	}
	report := p.WageReport()
	rank := report.RankRequesters()
	if len(rank) == 0 {
		fmt.Println("no completed work episodes in trace")
		return nil
	}
	fmt.Println("estimated hourly wages per requester (best first):")
	for _, req := range rank {
		fmt.Printf("  %-12s %s\n", req, report.ByRequester[req])
	}
	return nil
}

func loadPolicy(path string) (*crowdfair.Policy, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return crowdfair.ParsePolicy(string(src))
}
