package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/model"
	"repro/internal/stats"
	"repro/internal/store"
	"repro/internal/wal"
	"repro/internal/workload"
)

// walSweepReport is the machine-readable group-commit result
// (BENCH_wal.json): one cell per (appender concurrency × sync policy),
// measured against a fresh durable store so every appended mutation rides
// the real shard/WAL path, not a synthetic log.
type walSweepReport struct {
	GOMAXPROCS int            `json:"gomaxprocs"`
	Seed       uint64         `json:"seed"`
	Shards     int            `json:"shards"`
	OpsPerCell int            `json:"ops_per_cell"`
	SegmentKB  int            `json:"segment_kb"`
	Cells      []walSweepCell `json:"cells"`
}

// walSweepCell is one sweep measurement. AppendsPerSync is the group-commit
// payoff: how many durable appends each fsync covered. SlowdownVsNever is
// the cell's throughput cost relative to the SyncNever cell at the same
// concurrency (1.0 = free durability); it is the acceptance headline for
// the ≥64-appender SyncAlways cells.
type walSweepCell struct {
	Concurrency     int     `json:"concurrency"`
	Policy          string  `json:"policy"`
	Ops             int     `json:"ops"`
	Seconds         float64 `json:"seconds"`
	AppendsPerSec   float64 `json:"appends_per_sec"`
	P50Micros       float64 `json:"p50_micros"`
	P99Micros       float64 `json:"p99_micros"`
	WALAppends      uint64  `json:"wal_appends"`
	WALBatches      uint64  `json:"wal_batches"`
	WALSyncs        uint64  `json:"wal_syncs"`
	AppendsPerSync  float64 `json:"appends_per_sync,omitempty"`
	SlowdownVsNever float64 `json:"slowdown_vs_never,omitempty"`
}

// runWALSweep drives the group-commit sweep: for each appender concurrency
// in concList and each sync policy, `conc` goroutines hammer disjoint
// worker sets with UpdateWorker against a fresh durable store, and the
// cell records wall throughput, per-append latency percentiles, and the
// writer's append/batch/fsync counters. Under SyncAlways every UpdateWorker
// blocks until a covering group fsync, so rising concurrency should hold
// throughput roughly flat while batch sizes grow — the whole point of the
// leader/follower commit path.
func runWALSweep(o walBenchOpts, root string, stdout io.Writer) error {
	var concs []int
	for _, s := range strings.Split(o.conc, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || v < 1 {
			return fmt.Errorf("bad -walconc entry %q (want integers >= 1)", s)
		}
		concs = append(concs, v)
	}
	if o.gcOps < 1 {
		return fmt.Errorf("-walops must be >= 1")
	}
	const shards = 4
	rng := stats.NewRNG(o.seed ^ 0x9c0fee)
	pop := workload.GeneratePopulation(workload.PopulationSpec{
		Workers: 2048, Archetypes: 8,
	}, rng.Split())

	rep := &walSweepReport{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Seed:       o.seed,
		Shards:     shards,
		OpsPerCell: o.gcOps,
		SegmentKB:  o.segKB,
	}
	policies := []wal.SyncPolicy{wal.SyncNever, wal.SyncInterval(0), wal.SyncAlways}

	fmt.Fprintf(stdout, "\ngroup-commit sweep (%d-shard durable store, %d ops/cell, %d KiB segments):\n",
		shards, o.gcOps, o.segKB)
	fmt.Fprintf(stdout, "  %4s  %-12s  %12s  %10s  %10s  %9s  %11s  %9s\n",
		"conc", "policy", "appends/s", "p50", "p99", "fsyncs", "app/fsync", "vs never")
	for _, conc := range concs {
		var neverThr float64
		for _, pol := range policies {
			conc := conc
			if conc > len(pop.Workers) {
				conc = len(pop.Workers)
			}
			dir := filepath.Join(root, fmt.Sprintf("gc-%d-%s", conc, strings.ReplaceAll(pol.String(), ":", "_")))
			st, err := store.NewDurable(pop.Universe, shards, dir,
				wal.Options{SegmentBytes: int64(o.segKB) << 10, Sync: pol})
			if err != nil {
				return err
			}
			if err := st.BulkPutWorkers(pop.Workers); err != nil {
				return err
			}
			groups := make([][]*model.Worker, conc)
			for i, w := range pop.Workers {
				groups[i%conc] = append(groups[i%conc], w)
			}
			perG := o.gcOps / conc
			if perG < 1 {
				perG = 1
			}
			lats := make([][]time.Duration, conc)
			before := st.WALStats()
			var wg sync.WaitGroup
			start := time.Now()
			for g := 0; g < conc; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					ws := groups[g]
					ls := make([]time.Duration, 0, perG)
					for i := 0; i < perG; i++ {
						w := ws[i%len(ws)]
						t0 := time.Now()
						w.Computed[model.AttrAcceptanceRatio] = model.Num(float64(i%100) / 100)
						if err := st.UpdateWorker(w); err != nil {
							panic(err) // disjoint pre-inserted workers: cannot fail
						}
						ls = append(ls, time.Since(t0))
					}
					lats[g] = ls
				}(g)
			}
			wg.Wait()
			wall := time.Since(start)
			after := st.WALStats()
			if err := st.Close(); err != nil {
				return err
			}
			var all []time.Duration
			for _, ls := range lats {
				all = append(all, ls...)
			}
			cell := walSweepCell{
				Concurrency:   conc,
				Policy:        pol.String(),
				Ops:           perG * conc,
				Seconds:       wall.Seconds(),
				AppendsPerSec: float64(perG*conc) / wall.Seconds(),
				P50Micros:     float64(pct(all, 0.50)) / float64(time.Microsecond),
				P99Micros:     float64(pct(all, 0.99)) / float64(time.Microsecond),
				WALAppends:    after.Appends - before.Appends,
				WALBatches:    after.Batches - before.Batches,
				WALSyncs:      after.Syncs - before.Syncs,
			}
			if cell.WALSyncs > 0 {
				cell.AppendsPerSync = float64(cell.WALAppends) / float64(cell.WALSyncs)
			}
			if pol == wal.SyncNever {
				neverThr = cell.AppendsPerSec
			} else if neverThr > 0 && cell.AppendsPerSec > 0 {
				cell.SlowdownVsNever = neverThr / cell.AppendsPerSec
			}
			rep.Cells = append(rep.Cells, cell)
			vs := "-"
			if cell.SlowdownVsNever > 0 {
				vs = fmt.Sprintf("%.2fx", cell.SlowdownVsNever)
			}
			fmt.Fprintf(stdout, "  %4d  %-12s  %10.0f/s  %9.1fµ  %9.1fµ  %9d  %11.1f  %9s\n",
				conc, cell.Policy, cell.AppendsPerSec, cell.P50Micros, cell.P99Micros,
				cell.WALSyncs, cell.AppendsPerSync, vs)
		}
	}

	if o.out != "" {
		blob, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		blob = append(blob, '\n')
		if err := os.WriteFile(o.out, blob, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %s\n", o.out)
	}
	return nil
}
