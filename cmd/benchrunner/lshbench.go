package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/audit"
	"repro/internal/eventlog"
	"repro/internal/fairness"
	"repro/internal/model"
	"repro/internal/similarity"
	"repro/internal/stats"
	"repro/internal/store"
)

// lshBenchOpts are the -lshbench knobs.
type lshBenchOpts struct {
	sizes       string
	exactMax    int
	churnMax    int
	churnRounds int
	churnMuts   int
	out         string
	seed        uint64
}

// lshBenchReport is the machine-readable result (BENCH_lsh.json).
type lshBenchReport struct {
	GOMAXPROCS int                `json:"gomaxprocs"`
	Seed       uint64             `json:"seed"`
	ExactMax   int                `json:"exact_max"`
	FirstAudit []lshFirstAuditRow `json:"first_audit"`
	IndexBuild []lshBuildRow      `json:"index_build"`
	Churn      []lshChurnRow      `json:"churn"`
	Speedups   []lshSpeedupRow    `json:"speedups"`
}

// lshBuildRow measures one (size, mode) full rebuild of the worker LSH
// index. Mode "serial" is the per-entity Signature + UpsertSignature loop;
// mode "parallel" is the PopulateIndex path — pooled signature hashing
// followed by BulkUpsertSignatures' band-parallel bucket fill. The two
// builds produce identical indexes; only wall time differs.
type lshBuildRow struct {
	Workers int     `json:"workers"`
	Mode    string  `json:"mode"`
	Seconds float64 `json:"seconds"`
}

// lshFirstAuditRow measures one (size, backend) cold full scan — Axioms 1
// and 2 through the plain checkers, the pair-heavy paths where candidate
// generation dominates.
type lshFirstAuditRow struct {
	Workers    int     `json:"workers"`
	Tasks      int     `json:"tasks"`
	Backend    string  `json:"backend"`
	Seconds    float64 `json:"seconds"`
	Checked    int     `json:"checked"`
	Violations int     `json:"violations"`
	Skipped    bool    `json:"skipped,omitempty"`
	SkipReason string  `json:"skip_reason,omitempty"`
}

// lshChurnRow measures one (size, backend) incremental-engine run: the
// cold pass, then churnRounds delta passes of churnMuts mutations each.
type lshChurnRow struct {
	Workers          int     `json:"workers"`
	Backend          string  `json:"backend"`
	ColdSeconds      float64 `json:"cold_seconds"`
	Rounds           int     `json:"rounds"`
	MutationsPerPass int     `json:"mutations_per_pass"`
	MeanDeltaSeconds float64 `json:"mean_delta_seconds"`
	MaxDeltaSeconds  float64 `json:"max_delta_seconds"`
	Skipped          bool    `json:"skipped,omitempty"`
	SkipReason       string  `json:"skip_reason,omitempty"`
}

// lshSpeedupRow is the headline ratio per size where both backends ran.
type lshSpeedupRow struct {
	Workers           int     `json:"workers"`
	FirstAuditSpeedup float64 `json:"first_audit_speedup,omitempty"`
	IndexBuildSpeedup float64 `json:"index_build_speedup,omitempty"`
	ChurnSpeedup      float64 `json:"churn_speedup,omitempty"`
}

// lshPopulation builds the candidate-generation stress workload: workers
// come in clusters of 20 sharing a 3-skill niche core (the truly similar
// pairs), every worker additionally holds one skill from a small popular
// pool — the token the exact inverted index over-generates on, pairing
// workers whose full similarity is far below threshold — plus per-worker
// jitter (an occasional extra skill, a nudged acceptance ratio). Offers are
// cluster-affine with a sparse dropout so some similar pairs genuinely see
// different tasks. The structural point: exact candidates grow ~n²/|popular
// pool| while truly similar pairs grow ~n, which is exactly the regime
// sub-quadratic pruning exists for.
func lshPopulation(n int, seed uint64, withContribs bool) (*store.Store, *eventlog.Log, error) {
	const (
		popularPool = 200
		nichePool   = 2300
		clusterSize = 20
		coreSkills  = 3
	)
	names := make([]string, popularPool+nichePool)
	for i := range names {
		names[i] = fmt.Sprintf("s%04d", i)
	}
	u := model.MustUniverse(names...)
	st := store.New(u)
	rng := stats.NewRNG(seed)
	for _, r := range []model.RequesterID{"r1", "r2", "r3"} {
		if err := st.PutRequester(&model.Requester{ID: r}); err != nil {
			return nil, nil, err
		}
	}

	clusters := (n + clusterSize - 1) / clusterSize
	cores := make([][]int, clusters)
	for c := range cores {
		for j := 0; j < coreSkills; j++ {
			cores[c] = append(cores[c], popularPool+rng.Intn(nichePool))
		}
	}
	countries := []string{"jp", "fr", "br", "in", "us"}

	workers := make([]*model.Worker, n)
	for i := 0; i < n; i++ {
		c := i / clusterSize
		skills := model.NewSkillVector(len(names))
		for _, k := range cores[c] {
			skills[k] = true
		}
		skills[rng.Intn(popularPool)] = true
		if rng.Bool(0.25) {
			skills[popularPool+rng.Intn(nichePool)] = true
		}
		workers[i] = &model.Worker{
			ID:       model.WorkerID(fmt.Sprintf("w%07d", i)),
			Declared: model.Attributes{"country": model.Str(countries[c%len(countries)])},
			Computed: model.Attributes{
				model.AttrAcceptanceRatio: model.Num(0.4 + 0.01*float64(c%40) + 0.004*rng.Float64()),
			},
			Skills: skills,
		}
	}
	if err := st.BulkPutWorkers(workers); err != nil {
		return nil, nil, err
	}

	// Two tasks per cluster from alternating requesters at near-equal
	// rewards: the Axiom 2 candidate surface, clustered like the workers.
	tasks := 2 * clusters
	for j := 0; j < tasks; j++ {
		c := j / 2
		skills := model.NewSkillVector(len(names))
		for _, k := range cores[c] {
			skills[k] = true
		}
		t := &model.Task{
			ID:        model.TaskID(fmt.Sprintf("t%07d", j)),
			Requester: []model.RequesterID{"r1", "r2", "r3"}[j%3],
			Skills:    skills,
			Reward:    []float64{1.0, 1.005}[j%2],
		}
		if err := st.PutTask(t); err != nil {
			return nil, nil, err
		}
	}

	log := eventlog.New()
	for i := 0; i < n; i++ {
		c := i / clusterSize
		for d := 0; d < 2; d++ {
			if d == 1 && i%100 == 0 {
				continue // sparse dropout: similar workers, different offers
			}
			log.MustAppend(eventlog.Event{
				Type:   eventlog.TaskOffered,
				Worker: model.WorkerID(fmt.Sprintf("w%07d", i)),
				Task:   model.TaskID(fmt.Sprintf("t%07d", 2*c+d)),
			})
		}
	}

	if withContribs {
		fillers := []string{"carefully", "quickly", "reliably"}
		cn := 0
		for j := 0; j < tasks; j += 4 { // a quarter of the tasks draw contributions
			c := j / 2
			for k := 0; k < 3; k++ {
				cn++
				contrib := &model.Contribution{
					ID:     model.ContributionID(fmt.Sprintf("c%07d", cn)),
					Task:   model.TaskID(fmt.Sprintf("t%07d", j)),
					Worker: model.WorkerID(fmt.Sprintf("w%07d", (c*clusterSize+k)%n)),
					Text:   fmt.Sprintf("the answer for task %d is assembled %s from the cluster corpus", j, fillers[rng.Intn(len(fillers))]),
					Paid:   []float64{0.5, 0.5, 2.0}[rng.Intn(3)],
				}
				if err := st.PutContribution(contrib); err != nil {
					return nil, nil, err
				}
			}
		}
	}
	return st, log, nil
}

// lshBenchConfig returns the audit config for one backend.
func lshBenchConfig(backend string, seed uint64) fairness.Config {
	cfg := fairness.DefaultConfig()
	if backend == fairness.CandidateLSH {
		cfg.CandidateIndex = fairness.CandidateLSH
		cfg.LSHSeed = seed
	}
	return cfg
}

// runLSHBench measures exact vs LSH candidate generation two ways. The
// first-audit phase times a cold full scan of Axioms 1 and 2 through the
// plain checkers at each population size — the pure pair-enumeration cost,
// with no engine state. The churn phase runs the incremental engine (cold
// pass, then delta passes over a steady mutation trickle) to show the LSH
// index's incremental maintenance keeps delta audits at least as fast as
// the exact backend's. Sizes beyond -lshexactmax skip the exact backend
// (its candidate set grows ~n²/|popular pool|); skips are recorded in the
// report, never silently dropped.
func runLSHBench(o lshBenchOpts, stdout io.Writer) error {
	var sizes []int
	for _, s := range strings.Split(o.sizes, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || v < clusterFloor {
			return fmt.Errorf("bad -lshsizes entry %q (want integers >= %d)", s, clusterFloor)
		}
		sizes = append(sizes, v)
	}
	if o.churnRounds < 1 || o.churnMuts < 1 {
		return fmt.Errorf("-lshchurnrounds and -lshchurnmuts must be >= 1")
	}
	rep := &lshBenchReport{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Seed:       o.seed,
		ExactMax:   o.exactMax,
	}
	backends := []string{fairness.CandidateExact, fairness.CandidateLSH}

	for _, n := range sizes {
		fmt.Fprintf(stdout, "# %d workers\n", n)
		withContribs := n <= o.churnMax
		st, log, err := lshPopulation(n, o.seed, withContribs)
		if err != nil {
			return err
		}
		ix := fairness.AccessIndexFromLog(log)

		speedup := lshSpeedupRow{Workers: n}
		var firstAuditSecs [2]float64
		for bi, backend := range backends {
			row := lshFirstAuditRow{Workers: n, Tasks: st.TaskCount(), Backend: backend}
			if backend == fairness.CandidateExact && n > o.exactMax {
				row.Skipped = true
				row.SkipReason = fmt.Sprintf("exact backend gated above -lshexactmax=%d workers", o.exactMax)
				fmt.Fprintf(stdout, "  first-audit %-5s  SKIPPED (%s)\n", backend, row.SkipReason)
				rep.FirstAudit = append(rep.FirstAudit, row)
				continue
			}
			cfg := lshBenchConfig(backend, o.seed)
			runtime.GC() // don't bill this cell for the previous cell's garbage
			start := time.Now()
			r1 := fairness.CheckAxiom1Indexed(st, ix, cfg)
			r2 := fairness.CheckAxiom2Indexed(st, ix, cfg)
			row.Seconds = time.Since(start).Seconds()
			row.Checked = r1.Checked + r2.Checked
			row.Violations = len(r1.Violations) + len(r2.Violations)
			firstAuditSecs[bi] = row.Seconds
			fmt.Fprintf(stdout, "  first-audit %-5s  %10.3fs  checked %12d  violations %8d\n",
				backend, row.Seconds, row.Checked, row.Violations)
			rep.FirstAudit = append(rep.FirstAudit, row)
		}
		if firstAuditSecs[0] > 0 && firstAuditSecs[1] > 0 {
			speedup.FirstAuditSpeedup = firstAuditSecs[0] / firstAuditSecs[1]
			fmt.Fprintf(stdout, "  first-audit speedup: %.2fx (exact/lsh)\n", speedup.FirstAuditSpeedup)
		}

		// Index-build phase: full worker-index rebuild, serial vs pooled
		// (PopulateIndex = parallel signature hashing + band-parallel
		// BulkUpsertSignatures). Same data, byte-identical result.
		{
			cfg := lshBenchConfig(fairness.CandidateLSH, o.seed)
			plan := cfg.Plan()
			ws := st.Workers()
			runtime.GC()
			start := time.Now()
			six := similarity.NewLSHIndex(plan.Worker)
			for _, w := range ws {
				six.UpsertSignature(string(w.ID), six.Hasher().Signature(plan.WorkerTokens(w)))
			}
			serialSecs := time.Since(start).Seconds()
			runtime.GC()
			start = time.Now()
			pix := similarity.NewLSHIndex(plan.Worker)
			fairness.PopulateIndex(pix, len(ws), func(i int) string { return string(ws[i].ID) },
				func(i int) []uint64 { return plan.WorkerTokens(ws[i]) })
			parSecs := time.Since(start).Seconds()
			if six.Len() != pix.Len() {
				return fmt.Errorf("index-build mismatch: serial %d entities, parallel %d", six.Len(), pix.Len())
			}
			rep.IndexBuild = append(rep.IndexBuild,
				lshBuildRow{Workers: n, Mode: "serial", Seconds: serialSecs},
				lshBuildRow{Workers: n, Mode: "parallel", Seconds: parSecs})
			if parSecs > 0 {
				speedup.IndexBuildSpeedup = serialSecs / parSecs
			}
			fmt.Fprintf(stdout, "  index-build serial %8.3fs  parallel %8.3fs  speedup %.2fx\n",
				serialSecs, parSecs, speedup.IndexBuildSpeedup)
		}

		var churnMeans [2]float64
		if n <= o.churnMax {
			rng := stats.NewRNG(o.seed ^ 0xc4a21 ^ uint64(n))
			for bi, backend := range backends {
				row := lshChurnRow{
					Workers: n, Backend: backend,
					Rounds: o.churnRounds, MutationsPerPass: o.churnMuts,
				}
				if backend == fairness.CandidateExact && n > o.exactMax {
					row.Skipped = true
					row.SkipReason = fmt.Sprintf("exact backend gated above -lshexactmax=%d workers", o.exactMax)
					fmt.Fprintf(stdout, "  churn       %-5s  SKIPPED (%s)\n", backend, row.SkipReason)
					rep.Churn = append(rep.Churn, row)
					continue
				}
				cfg := lshBenchConfig(backend, o.seed)
				eng := audit.New(st, log, cfg)
				runtime.GC() // don't bill this cell for the previous cell's garbage
				start := time.Now()
				eng.Audit()
				row.ColdSeconds = time.Since(start).Seconds()
				var total float64
				for round := 0; round < o.churnRounds; round++ {
					for m := 0; m < o.churnMuts; m++ {
						id := model.WorkerID(fmt.Sprintf("w%07d", rng.Intn(n)))
						w, err := st.Worker(id)
						if err != nil {
							return err
						}
						w.Computed[model.AttrAcceptanceRatio] = model.Num(0.4 + 0.004*rng.Float64())
						if err := st.UpdateWorker(w); err != nil {
							return err
						}
					}
					t0 := time.Now()
					eng.Audit()
					el := time.Since(t0).Seconds()
					total += el
					if el > row.MaxDeltaSeconds {
						row.MaxDeltaSeconds = el
					}
				}
				row.MeanDeltaSeconds = total / float64(o.churnRounds)
				churnMeans[bi] = row.MeanDeltaSeconds
				fmt.Fprintf(stdout, "  churn       %-5s  cold %8.3fs  delta mean %8.4fs  max %8.4fs\n",
					backend, row.ColdSeconds, row.MeanDeltaSeconds, row.MaxDeltaSeconds)
				rep.Churn = append(rep.Churn, row)
			}
			if churnMeans[0] > 0 && churnMeans[1] > 0 {
				speedup.ChurnSpeedup = churnMeans[0] / churnMeans[1]
				fmt.Fprintf(stdout, "  churn speedup: %.2fx (exact/lsh delta mean)\n", speedup.ChurnSpeedup)
			}
		} else {
			fmt.Fprintf(stdout, "  churn: skipped above -lshchurnmax=%d workers\n", o.churnMax)
		}
		rep.Speedups = append(rep.Speedups, speedup)
	}

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if o.out != "" {
		if err := os.WriteFile(o.out, blob, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %s\n", o.out)
		return nil
	}
	stdout.Write(blob)
	return nil
}

// clusterFloor is the smallest population -lshbench accepts (one full
// cluster).
const clusterFloor = 20
