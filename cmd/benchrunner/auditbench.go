package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/audit"
	"repro/internal/eventlog"
	"repro/internal/fairness"
	"repro/internal/model"
	"repro/internal/par"
	"repro/internal/stats"
)

// auditBenchOpts are the -auditbench knobs.
type auditBenchOpts struct {
	sizes   string
	fracs   string
	workers string
	rounds  int
	backend string
	out     string
	seed    uint64
}

// auditBenchReport is the machine-readable result (BENCH_audit.json).
type auditBenchReport struct {
	GOMAXPROCS int               `json:"gomaxprocs"`
	Seed       uint64            `json:"seed"`
	Backend    string            `json:"backend"`
	Rounds     int               `json:"rounds"`
	Cells      []auditBenchCell  `json:"cells"`
	Speedups   []auditSpeedupRow `json:"speedups"`
}

// auditBenchCell is one (population, dirty fraction, pool width) run: a
// cold full audit, then rounds delta passes over a deterministic mutation
// stream. The stream is a pure function of (seed, population, fraction) —
// never of the pool width — so every pool width in a column replays the
// same trace, audits the same dirty sets, and must render byte-identical
// reports; the sweep fails loudly if any width diverges from the serial
// (pool=1-equivalent) baseline.
type auditBenchCell struct {
	Workers          int     `json:"workers"`
	Tasks            int     `json:"tasks"`
	DirtyFrac        float64 `json:"dirty_frac"`
	DirtyPerPass     int     `json:"dirty_per_pass"`
	PoolWorkers      int     `json:"pool_workers"`
	ColdSeconds      float64 `json:"cold_seconds"`
	MeanDeltaSeconds float64 `json:"mean_delta_seconds"`
	MaxDeltaSeconds  float64 `json:"max_delta_seconds"`
	Checked          int     `json:"checked"`
	Violations       int     `json:"violations"`
}

// auditSpeedupRow is the headline ratio per cell against the first pool
// width in the sweep (put 1 first so ratios read as parallel speedup).
type auditSpeedupRow struct {
	Workers      int     `json:"workers"`
	DirtyFrac    float64 `json:"dirty_frac"`
	PoolWorkers  int     `json:"pool_workers"`
	ColdSpeedup  float64 `json:"cold_speedup"`
	DeltaSpeedup float64 `json:"delta_speedup"`
}

// auditFingerprint reduces a report set to a comparable byte form: axiom,
// Checked, and every rendered violation.
func auditFingerprint(reps []*fairness.Report) string {
	var b strings.Builder
	for _, r := range reps {
		fmt.Fprintf(&b, "%s|%d|%d\n", r.Axiom, r.Checked, len(r.Violations))
		for _, v := range r.Violations {
			b.WriteString(v.String())
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// auditCellResult carries one run's timings plus its per-round report
// fingerprints for the cross-width determinism check.
type auditCellResult struct {
	cell  auditBenchCell
	cold  string
	delta []string
}

// runAuditCell builds a fresh population, runs the cold audit, then rounds
// delta passes of dirty mutations each. Everything — population, mutation
// stream, audit reports — is deterministic given (seed, n, frac); the
// ambient par budget is the only thing the caller varies between runs.
func runAuditCell(o auditBenchOpts, n int, frac float64, poolWorkers int) (auditCellResult, error) {
	var res auditCellResult
	st, log, err := lshPopulation(n, o.seed, true)
	if err != nil {
		return res, err
	}
	cfg := lshBenchConfig(o.backend, o.seed)
	dirty := int(frac * float64(n))
	if dirty < 1 {
		dirty = 1
	}
	// Sorted contribution IDs: store iteration order must never leak into
	// the mutation stream, or pool widths would replay different traces.
	var contribIDs []model.ContributionID
	for _, c := range st.Contributions() {
		contribIDs = append(contribIDs, c.ID)
	}
	sort.Slice(contribIDs, func(i, j int) bool { return contribIDs[i] < contribIDs[j] })
	tasks := st.TaskCount()

	eng := audit.New(st, log, cfg)
	runtime.GC() // don't bill this cell for the previous cell's garbage
	start := time.Now()
	reps := eng.Audit()
	coldSecs := time.Since(start).Seconds()
	res.cold = auditFingerprint(reps)

	rng := stats.NewRNG(o.seed ^ 0xa0d17b ^ uint64(n) ^ uint64(dirty))
	var total, max float64
	for round := 0; round < o.rounds; round++ {
		for m := 0; m < dirty; m++ {
			switch rng.Intn(4) {
			case 0, 1: // worker attribute churn: Axioms 1 and 4
				id := model.WorkerID(fmt.Sprintf("w%07d", rng.Intn(n)))
				w, err := st.Worker(id)
				if err != nil {
					return res, err
				}
				w.Computed[model.AttrAcceptanceRatio] = model.Num(0.4 + 0.004*rng.Float64())
				if err := st.UpdateWorker(w); err != nil {
					return res, err
				}
			case 2: // payment churn: Axiom 3
				c, err := st.Contribution(contribIDs[rng.Intn(len(contribIDs))])
				if err != nil {
					return res, err
				}
				c.Paid = []float64{0.5, 2.0}[rng.Intn(2)]
				if err := st.UpdateContribution(c); err != nil {
					return res, err
				}
			case 3: // offer churn: Axioms 1 and 2 via the event log
				log.MustAppend(eventlog.Event{
					Type:   eventlog.TaskOffered,
					Worker: model.WorkerID(fmt.Sprintf("w%07d", rng.Intn(n))),
					Task:   model.TaskID(fmt.Sprintf("t%07d", rng.Intn(tasks))),
				})
			}
		}
		t0 := time.Now()
		reps = eng.Audit()
		el := time.Since(t0).Seconds()
		total += el
		if el > max {
			max = el
		}
		res.delta = append(res.delta, auditFingerprint(reps))
	}
	checked, viols := 0, 0
	for _, r := range reps {
		checked += r.Checked
		viols += len(r.Violations)
	}
	res.cell = auditBenchCell{
		Workers: n, Tasks: tasks, DirtyFrac: frac, DirtyPerPass: dirty,
		PoolWorkers: poolWorkers, ColdSeconds: coldSecs,
		MeanDeltaSeconds: total / float64(o.rounds), MaxDeltaSeconds: max,
		Checked: checked, Violations: viols,
	}
	return res, nil
}

// runAuditBench sweeps the parallel audit pipeline over population size ×
// dirty fraction × worker-pool width. Each (size, fraction) column replays
// one deterministic trace at every pool width through par.SetMaxWorkers;
// the serial width doubles as the determinism oracle — any report diverging
// from its fingerprints fails the sweep. Wall-clock speedups need real
// cores: on a single-P runtime every width collapses to inline execution
// and ratios hover at 1.
func runAuditBench(o auditBenchOpts, stdout io.Writer) error {
	var sizes []int
	for _, s := range strings.Split(o.sizes, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || v < clusterFloor {
			return fmt.Errorf("bad -auditsizes entry %q (want integers >= %d)", s, clusterFloor)
		}
		sizes = append(sizes, v)
	}
	var fracs []float64
	for _, s := range strings.Split(o.fracs, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil || v <= 0 || v > 1 {
			return fmt.Errorf("bad -auditdirty entry %q (want fractions in (0,1])", s)
		}
		fracs = append(fracs, v)
	}
	var widths []int
	for _, s := range strings.Split(o.workers, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || v < 1 {
			return fmt.Errorf("bad -auditworkers entry %q (want integers >= 1)", s)
		}
		widths = append(widths, v)
	}
	if o.rounds < 1 {
		return fmt.Errorf("-auditrounds must be >= 1")
	}
	switch o.backend {
	case fairness.CandidateExact, fairness.CandidateLSH:
	default:
		return fmt.Errorf("bad -auditbackend %q (want %s or %s)", o.backend, fairness.CandidateExact, fairness.CandidateLSH)
	}

	rep := &auditBenchReport{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Seed:       o.seed,
		Backend:    o.backend,
		Rounds:     o.rounds,
	}
	defer par.SetMaxWorkers(0)
	fmt.Fprintf(stdout, "audit scaling sweep: backend=%s rounds=%d GOMAXPROCS=%d\n",
		o.backend, o.rounds, runtime.GOMAXPROCS(0))
	for _, n := range sizes {
		for _, frac := range fracs {
			fmt.Fprintf(stdout, "# %d workers, dirty fraction %.3f\n", n, frac)
			var base auditCellResult
			for wi, width := range widths {
				par.SetMaxWorkers(width)
				res, err := runAuditCell(o, n, frac, width)
				par.SetMaxWorkers(0)
				if err != nil {
					return err
				}
				if wi == 0 {
					base = res
				} else {
					if res.cold != base.cold {
						return fmt.Errorf("auditbench: cold audit at pool=%d diverges from pool=%d (n=%d frac=%.3f)",
							width, widths[0], n, frac)
					}
					for r := range res.delta {
						if res.delta[r] != base.delta[r] {
							return fmt.Errorf("auditbench: delta round %d at pool=%d diverges from pool=%d (n=%d frac=%.3f)",
								r, width, widths[0], n, frac)
						}
					}
				}
				rep.Cells = append(rep.Cells, res.cell)
				sp := auditSpeedupRow{Workers: n, DirtyFrac: frac, PoolWorkers: width}
				if res.cell.ColdSeconds > 0 {
					sp.ColdSpeedup = base.cell.ColdSeconds / res.cell.ColdSeconds
				}
				if res.cell.MeanDeltaSeconds > 0 {
					sp.DeltaSpeedup = base.cell.MeanDeltaSeconds / res.cell.MeanDeltaSeconds
				}
				rep.Speedups = append(rep.Speedups, sp)
				fmt.Fprintf(stdout, "  pool=%-3d  cold %8.3fs (%.2fx)  delta mean %8.4fs  max %8.4fs (%.2fx)  checked %10d\n",
					width, res.cell.ColdSeconds, sp.ColdSpeedup,
					res.cell.MeanDeltaSeconds, res.cell.MaxDeltaSeconds, sp.DeltaSpeedup, res.cell.Checked)
			}
			fmt.Fprintf(stdout, "  determinism: all pool widths rendered identical reports across %d rounds\n", o.rounds)
		}
	}

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if o.out != "" {
		if err := os.WriteFile(o.out, blob, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %s\n", o.out)
		return nil
	}
	stdout.Write(blob)
	return nil
}
