package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/crowdfair"
	"repro/internal/load"
	"repro/internal/serve"
	"repro/internal/stats"
	"repro/internal/wal"
	"repro/internal/workload"
)

// serveBenchOpts parameterises -servebench.
type serveBenchOpts struct {
	requests int           // measured requests per cell
	conc     string        // comma list of closed-loop concurrencies
	sloP99   time.Duration // SLO p99 per endpoint
	capIters int           // capacity-search bisection rounds
	overRate float64       // open-loop overload rate (0: 2x best closed-loop achieved)
	out      string        // report path ("" = stdout)
	seed     uint64
}

// serveBenchReport is the BENCH_serve.json payload: closed-loop latency at
// several concurrencies over a durable WAL-backed platform, a determinism
// double-run checked against the serial oracle, an overload cell proving
// 429 shedding protects admitted-request latency, and a capacity search
// for the highest SLO-clean open-loop rate.
type serveBenchReport struct {
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	CPUs      int    `json:"cpus"`
	Seed      uint64 `json:"seed"`
	Requests  int    `json:"requests_per_cell"`

	SLO load.SLO `json:"slo"`

	ClosedLoop  []serveClosedCell    `json:"closed_loop"`
	Determinism serveDeterminismCell `json:"determinism"`
	Overload    serveOverloadCell    `json:"overload"`
	Capacity    *load.CapacityResult `json:"capacity"`
}

// serveClosedCell is one closed-loop latency measurement over a durable
// platform: the coalescer's batch occupancy and the WAL's group-commit
// amortisation (appends per fsync) are the mechanism the latency numbers
// are explained by.
type serveClosedCell struct {
	Concurrency   int          `json:"concurrency"`
	Durable       bool         `json:"durable"`
	WALSync       string       `json:"wal_sync"`
	Result        *load.Result `json:"result"`
	MeanBatchSize float64      `json:"mean_batch_size"`
	WALAppends    uint64       `json:"wal_appends"`
	WALSyncs      uint64       `json:"wal_syncs"`
	// AppendsPerSync is the group-commit amortisation factor the request
	// coalescer feeds.
	AppendsPerSync float64 `json:"appends_per_sync"`
	FinalAuditVer  uint64  `json:"final_audit_version"`
}

// serveDeterminismCell double-runs one plan concurrently and compares both
// final audit fingerprints to the serially-applied oracle.
type serveDeterminismCell struct {
	Seed         uint64 `json:"seed"`
	Concurrency  int    `json:"concurrency"`
	FingerprintA string `json:"fingerprint_run_a"`
	FingerprintB string `json:"fingerprint_run_b"`
	Oracle       string `json:"oracle"`
	Match        bool   `json:"match"`
}

// serveOverloadCell drives an open-loop rate past what the audit pipeline
// sustains into a small admission window and records what the shedding
// bought: Pass asserts the overload contract — real shedding (429s) while
// the p99 of *admitted* mutations stays within 2x the SLO.
type serveOverloadCell struct {
	Rate          float64      `json:"rate"`
	MaxQueue      int          `json:"max_queue"`
	MaxAuditLag   uint64       `json:"max_audit_lag"`
	Result        *load.Result `json:"result"`
	ShedRate      float64      `json:"shed_rate"`
	AdmittedP99MS float64      `json:"admitted_p99_ms"`
	BoundMS       float64      `json:"bound_ms"` // 2x SLO p99
	Pass          bool         `json:"pass"`
}

// overloadConns bounds the client connection pool for open-loop cells. An
// over-capacity open loop with an unbounded client dials a socket per
// backlogged request; the listener's accept queue overflows and every
// response — 429s included — waits out SYN retransmits, so the cell would
// measure the kernel's connection backlog instead of the admission
// controller it exists to exercise.
const overloadConns = 256

// parseIntList parses a comma-separated list of positive integers.
func parseIntList(list string) ([]int, error) {
	var out []int
	for _, s := range strings.Split(list, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad entry %q (want integers >= 1)", s)
		}
		out = append(out, v)
	}
	return out, nil
}

// serveCell runs one measured load cell on a fresh server and tears
// everything down afterwards. client may be nil for the default pool;
// open-loop cells pass a bounded pool so an over-capacity schedule
// saturates the admission controller instead of the TCP accept queue.
func serveCell(plan *load.Plan, cfg serve.Config, sched workload.ArrivalSchedule, slo *load.SLO, client *http.Client) (*load.Result, *serve.Server, error) {
	if err := plan.SeedPlatform(cfg.Platform); err != nil {
		return nil, nil, err
	}
	s := serve.New(cfg)
	s.Start()
	ts := httptest.NewServer(s.Handler())
	res := (&load.Runner{Base: ts.URL, Client: client}).Run(plan, sched, slo)
	ts.Close()
	s.Stop()
	return res, s, nil
}

func runServeBench(o serveBenchOpts, stdout io.Writer) error {
	concs, err := parseIntList(o.conc)
	if err != nil {
		return fmt.Errorf("-serveconc: %w", err)
	}
	if len(concs) < 2 {
		return fmt.Errorf("-serveconc needs at least two concurrency levels, got %v", concs)
	}
	auditCfg := crowdfair.DefaultAuditConfig()
	slo := &load.SLO{P99: o.sloP99, MaxErrorRate: 0, MaxShedRate: 0.01}
	rep := &serveBenchReport{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
		Seed:      o.seed,
		Requests:  o.requests,
		SLO:       *slo,
	}
	spec := load.MixSpec{Requests: o.requests}

	// Closed-loop latency over a durable WAL-backed platform: every
	// coalesced batch pays one group-commit durability wait.
	sync := wal.SyncInterval(2 * time.Millisecond)
	bestRate := 0.0
	for _, c := range concs {
		dir, err := os.MkdirTemp("", "servebench")
		if err != nil {
			return err
		}
		plan := load.BuildPlan(spec, o.seed)
		p, err := crowdfair.OpenPlatformWAL(dir, plan.Universe, auditCfg, crowdfair.WALOptions{Sync: sync})
		if err != nil {
			os.RemoveAll(dir)
			return err
		}
		res, s, err := serveCell(plan, serve.Config{Platform: p, Audit: auditCfg, AuditEvery: 25 * time.Millisecond}, workload.ClosedLoop(c), slo, nil)
		var ws wal.WriterStats
		if err == nil {
			ws = p.Store().WALStats()
			err = p.Close()
		}
		if rmErr := os.RemoveAll(dir); err == nil {
			err = rmErr
		}
		if err != nil {
			return err
		}
		cell := serveClosedCell{
			Concurrency:   c,
			Durable:       true,
			WALSync:       sync.String(),
			Result:        res,
			FinalAuditVer: s.Snapshot().Version,
		}
		batches, batchedOps := s.BatchStats()
		if batches > 0 {
			cell.MeanBatchSize = float64(batchedOps) / float64(batches)
		}
		cell.WALAppends, cell.WALSyncs = ws.Appends, ws.Syncs
		if ws.Syncs > 0 {
			cell.AppendsPerSync = float64(ws.Appends) / float64(ws.Syncs)
		}
		rep.ClosedLoop = append(rep.ClosedLoop, cell)
		if res.AchievedRate > bestRate {
			bestRate = res.AchievedRate
		}
		fmt.Fprintf(os.Stderr, "servebench: closed c=%d: %.0f req/s, batch %.1f, appends/sync %.1f\n",
			c, res.AchievedRate, cell.MeanBatchSize, cell.AppendsPerSync)
	}

	// Determinism: the same plan replayed concurrently twice must land on
	// the serial oracle's audit fingerprint both times.
	det, err := runServeDeterminism(spec, o.seed, auditCfg)
	if err != nil {
		return err
	}
	rep.Determinism = *det
	if !det.Match {
		return fmt.Errorf("servebench: determinism check failed: run A %s, run B %s, oracle %s",
			det.FingerprintA, det.FingerprintB, det.Oracle)
	}

	// Overload: an open-loop rate the transport can carry but the audit
	// pipeline cannot — mutations outpace the auditor, the lag valve trips,
	// and the excess 429s. The contract: real shedding while the admitted
	// p99 holds within 2x SLO. The rate sits modestly above the best
	// closed-loop rate on purpose: arrival-stamped latency can only stay
	// bounded while total throughput (served + shed) matches the offered
	// rate, so driving far past what the host's cores can even generate
	// would measure client and scheduler backlog, not admission control.
	overRate := o.overRate
	if overRate == 0 {
		overRate = 1.25 * bestRate
	}
	over, err := runServeOverload(spec, o.seed, auditCfg, overRate, slo)
	if err != nil {
		return err
	}
	rep.Overload = *over
	fmt.Fprintf(os.Stderr, "servebench: overload %.0f req/s: shed %.1f%%, admitted p99 %.1fms (bound %.0fms), pass=%v\n",
		over.Rate, 100*over.ShedRate, over.AdmittedP99MS, over.BoundMS, over.Pass)

	// Capacity: highest open-loop rate that stays SLO-clean, fresh server
	// per probe so trials are comparable.
	lo := bestRate / 8
	if lo < 50 {
		lo = 50
	}
	hi := 2 * overRate
	trial := 0
	rep.Capacity = load.SearchCapacity(lo, hi, o.capIters, func(rate float64) *load.Result {
		trial++
		res, err := runServeOpenTrial(spec, stats.DeriveSeed(o.seed, 7, uint64(trial)), auditCfg, rate, slo, o.requests)
		if err != nil {
			fmt.Fprintf(os.Stderr, "servebench: capacity probe %.0f req/s failed: %v\n", rate, err)
			return &load.Result{}
		}
		fmt.Fprintf(os.Stderr, "servebench: capacity probe %.0f req/s: pass=%v shed=%.1f%%\n", rate, res.SLOPass, 100*res.ShedRate)
		return res
	})

	raw, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	raw = append(raw, '\n')
	if o.out != "" {
		if err := os.WriteFile(o.out, raw, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "servebench: report written to %s\n", o.out)
		return nil
	}
	_, err = stdout.Write(raw)
	return err
}

func runServeDeterminism(spec load.MixSpec, seed uint64, auditCfg crowdfair.AuditConfig) (*serveDeterminismCell, error) {
	const conc = 16
	cell := &serveDeterminismCell{Seed: seed, Concurrency: conc}
	fps := make([]string, 2)
	for i := range fps {
		plan := load.BuildPlan(spec, seed)
		p := crowdfair.NewPlatform(plan.Universe)
		res, s, err := serveCell(plan, serve.Config{Platform: p, Audit: auditCfg, AuditEvery: time.Millisecond}, workload.ClosedLoop(conc), nil, nil)
		if err != nil {
			return nil, err
		}
		if res.Errors > 0 || res.Shed > 0 {
			return nil, fmt.Errorf("servebench: determinism run %d had %d errors, %d sheds", i, res.Errors, res.Shed)
		}
		fps[i] = s.AuditNow().Fingerprint
	}
	oracle, err := load.BuildPlan(spec, seed).Oracle(auditCfg)
	if err != nil {
		return nil, err
	}
	cell.FingerprintA, cell.FingerprintB, cell.Oracle = fps[0], fps[1], oracle
	cell.Match = fps[0] == oracle && fps[1] == oracle
	return cell, nil
}

func runServeOverload(spec load.MixSpec, seed uint64, auditCfg crowdfair.AuditConfig, rate float64, slo *load.SLO) (*serveOverloadCell, error) {
	// Both admission valves engage here. The queue bound caps how long an
	// admitted mutation can wait for a batch. The audit-lag bound is what
	// actually throttles sustained overload: the auditor cannot keep up, lag
	// crosses the bound, and excess mutations 429 at the gate before they
	// consume apply or connection capacity — which is what keeps the
	// admitted p99 flat while the offered rate is far beyond capacity.
	const (
		maxQueue    = 64
		maxAuditLag = 32
	)
	plan := load.BuildPlan(spec, seed)
	p := crowdfair.NewPlatform(plan.Universe)
	sched := workload.OpenLoopPoisson(rate, len(plan.Requests), stats.NewRNG(stats.DeriveSeed(seed, 5, 0)))
	res, _, err := serveCell(plan, serve.Config{
		Platform: p, Audit: auditCfg,
		MaxQueue:    maxQueue,
		MaxAuditLag: maxAuditLag,
		RetryAfter:  25 * time.Millisecond,
		AuditEvery:  25 * time.Millisecond,
	}, sched, slo, load.PooledClient(overloadConns))
	if err != nil {
		return nil, err
	}
	cell := &serveOverloadCell{
		Rate:        rate,
		MaxQueue:    maxQueue,
		MaxAuditLag: maxAuditLag,
		Result:      res,
		ShedRate:    res.ShedRate,
		BoundMS:     2 * float64(slo.P99.Microseconds()) / 1e3,
	}
	for _, ep := range []string{load.EpContribution, load.EpWorkerUpdate, load.EpOffer} {
		if es := res.Endpoints[ep]; es != nil && es.OK > 0 && es.P99MS > cell.AdmittedP99MS {
			cell.AdmittedP99MS = es.P99MS
		}
	}
	cell.Pass = res.Shed > 0 && cell.AdmittedP99MS <= cell.BoundMS
	return cell, nil
}

// runServeOpenTrial is one capacity probe: fresh in-memory server, fresh
// derived seed, open-loop at the probed rate. Trial length is capped so
// low-rate probes do not dominate wall time.
func runServeOpenTrial(spec load.MixSpec, seed uint64, auditCfg crowdfair.AuditConfig, rate float64, slo *load.SLO, maxRequests int) (*load.Result, error) {
	n := int(rate * 3) // ~3 seconds of offered load
	if n > maxRequests {
		n = maxRequests
	}
	if n < 200 {
		n = 200
	}
	tspec := spec
	tspec.Requests = n
	plan := load.BuildPlan(tspec, seed)
	p := crowdfair.NewPlatform(plan.Universe)
	sched := workload.OpenLoopPoisson(rate, len(plan.Requests), stats.NewRNG(stats.DeriveSeed(seed, 6, 0)))
	res, _, err := serveCell(plan, serve.Config{Platform: p, Audit: auditCfg, AuditEvery: 25 * time.Millisecond}, sched, slo, load.PooledClient(overloadConns))
	return res, err
}
