package main

import (
	"bytes"
	"encoding/json"
	"io"
	"strings"
	"testing"

	"repro/internal/sweep"
)

func TestRunOnlySingleExperiment(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-only", "E3", "-seed", "7"}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "=== E3") {
		t.Fatalf("missing E3 table header in output:\n%s", out.String())
	}
	if strings.Contains(out.String(), "=== E1") {
		t.Fatal("-only E3 also printed E1")
	}
}

func TestRunRejectsUnknownExperiment(t *testing.T) {
	if err := run([]string{"-only", "E42"}, io.Discard, io.Discard); err == nil {
		t.Fatal("unknown -only experiment accepted")
	}
	if err := run([]string{"-sweep", "E42"}, io.Discard, io.Discard); err == nil {
		t.Fatal("unknown -sweep experiment accepted")
	}
	if err := run([]string{"-seeds", "notanumber"}, io.Discard, io.Discard); err == nil {
		t.Fatal("bad -seeds entry accepted")
	}
	if err := run([]string{"-scales", "0"}, io.Discard, io.Discard); err == nil {
		t.Fatal("zero -scales entry accepted")
	}
}

func TestRunSweepHuman(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-sweep", "E1,E3", "-seeds", "1,2", "-scales", "0.1", "-parallelism", "2"}, &out, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"--- job 0: E1", "seed=1", "seed=2", "=== E3"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("sweep output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunSweepJSON(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-sweep", "E4", "-seeds", "3", "-scales", "0.2", "-json"}, &out, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	var rep sweep.Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("sweep -json output is not valid JSON: %v", err)
	}
	if len(rep.Results) != 1 || rep.Results[0].Experiment != "E4" {
		t.Fatalf("unexpected JSON report: %+v", rep)
	}
	if len(rep.Results[0].Table.Rows) == 0 {
		t.Fatal("JSON report has an empty table")
	}
}

// TestRunWALBenchSmoke drives the full -walbench pipeline at toy scale:
// append throughput, durable simulation, recovery, and the warm-vs-cold
// first-audit comparison (which exits non-zero on any determinism
// divergence, so passing is itself the assertion).
func TestRunWALBenchSmoke(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-walbench", "-waldir", t.TempDir(),
		"-walworkers", "30", "-walrounds", "2", "-walsegkb", "16",
	}, &out, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"wal append throughput", "durable simulation and recovery",
		"first audit after restart", "determinism: warm == cold == full scan",
	} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("walbench output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunWALBenchRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-walbench", "-walsync", "sometimes"}, io.Discard, io.Discard); err == nil {
		t.Fatal("bad -walsync accepted")
	}
	if err := run([]string{"-walbench", "-walworkers", "1"}, io.Discard, io.Discard); err == nil {
		t.Fatal("degenerate -walworkers accepted")
	}
}

func TestRunOnlyComposesWithGridFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-only", "E3", "-seeds", "1,2", "-scales", "0.2"}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(out.String(), "--- job"); got != 2 {
		t.Fatalf("-only with -seeds swept %d jobs, want 2 (E3 × 2 seeds)", got)
	}
	if strings.Contains(out.String(), "=== E1") {
		t.Fatal("-only E3 sweep also ran E1")
	}
	if err := run([]string{"-only", "E3", "-sweep", "E4"}, io.Discard, io.Discard); err == nil {
		t.Fatal("-only combined with -sweep accepted")
	}
}
