// Command benchrunner regenerates the experiment tables of DESIGN.md
// (E1–E11), either one-shot in the format recorded in EXPERIMENTS.md or as
// a parallel parameter sweep over a grid of experiments × scales × seeds.
//
// Usage:
//
//	benchrunner [-seed N] [-only E4]
//	benchrunner -sweep E1,E4 [-seeds 1,2,3] [-scales 0.5,1,2] [-parallelism 8] [-json]
//	benchrunner -storebench [-goroutines 8] [-shards 1,2,4,8,16] [-ops 200000]
//	benchrunner -walbench [-walsync never|rotate|always] [-walsegkb 512] [-walworkers 300] [-walrounds 8] [-waldir DIR]
//	benchrunner -reshardbench [-goroutines 8] [-reshardfrom 8] [-reshardto 16]
//	benchrunner -auditbench [-auditsizes 2000,10000] [-auditdirty 0.01,0.05] [-auditworkers 1,2,4,8] [-auditrounds 5] [-auditbackend lsh] [-auditout BENCH_audit.json]
//
// The default mode runs every experiment once at the given seed. Sweep
// mode drives the same experiments through the internal/sweep worker pool:
// -sweep selects experiments ("all" for E1–E11), -seeds and -scales span
// the grid, -parallelism bounds the pool (default GOMAXPROCS), and -json
// switches the report from human tables to machine-readable JSON. Sweep
// results are deterministic for a given grid regardless of parallelism.
//
// Store-bench mode measures contended mutation throughput against the
// hash-sharded store at each shard count in -shards, with -goroutines
// concurrent writers issuing -ops updates in total — the quickest way to
// see the single-RWMutex baseline (shards=1) against the sharded layout on
// the current machine.
//
// WAL-bench mode measures the durable-persistence layer: raw segmented-log
// append throughput per fsync policy, durable-simulation overhead and
// recovery time across trace lengths, and warm vs cold first-audit latency
// after a restart (asserting the warm pass reports exactly what a cold
// full scan reports).
//
// Reshard-bench mode measures the two costs of the epoch-routed store:
// the mutation-latency spike concurrent writers see while Reshard splits
// the store live (baseline window vs during-split window, plus the
// reshard's own wall time), and the staleness a WAL-shipping read replica
// accumulates against write rate, with its catch-up time once writes stop.
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/audit"
	"repro/internal/eventlog"
	"repro/internal/experiments"
	"repro/internal/fairness"
	"repro/internal/model"
	"repro/internal/replica"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/store"
	"repro/internal/sweep"
	"repro/internal/wal"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return // -h/-help: usage already printed, exit 0
		}
		fmt.Fprintf(os.Stderr, "benchrunner: %v\n", err)
		os.Exit(2)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("benchrunner", flag.ContinueOnError)
	fs.SetOutput(stderr)
	seed := fs.Uint64("seed", 42, "deterministic seed (one-shot mode, and the default sweep seed)")
	only := fs.String("only", "", "run a single experiment (E1..E11)")
	sweepSel := fs.String("sweep", "", "comma-separated experiments to sweep, or \"all\"")
	seedList := fs.String("seeds", "", "comma-separated replicate seeds for the sweep grid")
	scaleList := fs.String("scales", "", "comma-separated scale factors for the sweep grid")
	parallelism := fs.Int("parallelism", 0, "sweep worker-pool size (0 = GOMAXPROCS)")
	asJSON := fs.Bool("json", false, "emit the sweep report as JSON instead of tables")
	storeBench := fs.Bool("storebench", false, "measure contended store mutation throughput per shard count")
	goroutines := fs.Int("goroutines", 8, "concurrent writers for -storebench")
	shardList := fs.String("shards", "1,2,4,8,16", "comma-separated shard counts for -storebench")
	ops := fs.Int("ops", 200000, "total mutations per -storebench cell")
	walBench := fs.Bool("walbench", false, "measure WAL append throughput, recovery time, and warm vs cold first-audit latency")
	walDir := fs.String("waldir", "", "persistence root for -walbench (default: a temp dir, removed afterwards)")
	walSync := fs.String("walsync", "never", "WAL fsync policy for -walbench trace runs (never|rotate|always)")
	walSegKB := fs.Int("walsegkb", 512, "WAL segment size in KiB for -walbench")
	walWorkers := fs.Int("walworkers", 300, "population size for the -walbench trace")
	walRounds := fs.Int("walrounds", 8, "simulation rounds for the -walbench trace")
	walConc := fs.String("walconc", "1,8,64,256", "comma-separated appender concurrencies for the -walbench group-commit sweep")
	walOps := fs.Int("walops", 8000, "appends per -walbench group-commit sweep cell")
	walOut := fs.String("walout", "", "write the -walbench group-commit sweep JSON report to this file")
	reshardBench := fs.Bool("reshardbench", false, "measure mutation latency during a live shard split and replica catch-up lag vs write rate")
	reshardFrom := fs.Int("reshardfrom", 8, "shard count before the -reshardbench split")
	reshardTo := fs.Int("reshardto", 16, "shard count after the -reshardbench split")
	lshBench := fs.Bool("lshbench", false, "measure exact vs MinHash/LSH candidate generation: first-audit latency and incremental churn")
	lshSizes := fs.String("lshsizes", "10000,100000,1000000", "comma-separated population sizes for -lshbench")
	lshExactMax := fs.Int("lshexactmax", 200000, "largest population the exact backend runs at in -lshbench (larger sizes record a skip)")
	lshChurnMax := fs.Int("lshchurnmax", 100000, "largest population the -lshbench churn phase runs at")
	lshChurnRounds := fs.Int("lshchurnrounds", 5, "delta passes per -lshbench churn cell")
	lshChurnMuts := fs.Int("lshchurnmuts", 200, "worker mutations per -lshbench delta pass")
	lshOut := fs.String("lshout", "", "write the -lshbench JSON report to this file (default: stdout)")
	auditBench := fs.Bool("auditbench", false, "sweep the parallel audit pipeline over population × dirty fraction × worker-pool width")
	auditSizes := fs.String("auditsizes", "2000,10000", "comma-separated population sizes for -auditbench")
	auditDirty := fs.String("auditdirty", "0.01,0.05", "comma-separated dirty fractions per delta pass for -auditbench")
	auditWorkers := fs.String("auditworkers", "1,2,4,8", "comma-separated par worker-pool widths for -auditbench (put 1 first: it is the speedup and determinism baseline)")
	auditRounds := fs.Int("auditrounds", 5, "delta passes per -auditbench cell")
	auditBackend := fs.String("auditbackend", "lsh", "candidate backend for -auditbench (exact|lsh)")
	auditOut := fs.String("auditout", "", "write the -auditbench JSON report to this file (default: stdout)")
	serveBench := fs.Bool("servebench", false, "measure the HTTP serving hot path: closed/open-loop latency vs SLO, overload shedding, and a capacity search")
	serveRequests := fs.Int("serverequests", 4000, "measured requests per -servebench cell")
	serveConc := fs.String("serveconc", "8,32", "comma-separated closed-loop concurrencies for -servebench (at least two)")
	serveSLO := fs.Duration("serveslo", 100*time.Millisecond, "SLO p99 latency bound per endpoint for -servebench")
	serveCapIters := fs.Int("servecapiters", 5, "capacity-search bisection rounds for -servebench")
	serveOverRate := fs.Float64("serveoverrate", 0, "open-loop overload rate for -servebench (0: 3x best closed-loop achieved rate)")
	serveOut := fs.String("serveout", "", "write the -servebench JSON report to this file (default: stdout)")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile of the selected benchmark to this file")
	memProfile := fs.String("memprofile", "", "write a heap profile (after a final GC) of the selected benchmark to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			if err := writeHeapProfile(*memProfile); err != nil {
				fmt.Fprintf(stderr, "benchrunner: -memprofile: %v\n", err)
			}
		}()
	}

	// The bench modes are mutually exclusive: each takes over the whole
	// run, so naming two at once used to silently run whichever this
	// dispatch chain tested first. Reject the ambiguity instead.
	var modes []string
	for _, m := range []struct {
		name string
		set  bool
	}{
		{"-auditbench", *auditBench},
		{"-lshbench", *lshBench},
		{"-storebench", *storeBench},
		{"-reshardbench", *reshardBench},
		{"-walbench", *walBench},
		{"-servebench", *serveBench},
		{"-sweep", *sweepSel != ""},
	} {
		if m.set {
			modes = append(modes, m.name)
		}
	}
	if len(modes) > 1 {
		return fmt.Errorf("conflicting bench modes %s: pick exactly one", strings.Join(modes, " "))
	}
	if len(modes) == 1 && modes[0] != "-sweep" && *only != "" {
		return fmt.Errorf("-only selects experiments for the default/sweep modes and does not compose with %s", modes[0])
	}

	if *serveBench {
		return runServeBench(serveBenchOpts{
			requests: *serveRequests, conc: *serveConc, sloP99: *serveSLO,
			capIters: *serveCapIters, overRate: *serveOverRate,
			out: *serveOut, seed: *seed,
		}, stdout)
	}
	if *auditBench {
		return runAuditBench(auditBenchOpts{
			sizes: *auditSizes, fracs: *auditDirty, workers: *auditWorkers,
			rounds: *auditRounds, backend: *auditBackend, out: *auditOut, seed: *seed,
		}, stdout)
	}
	if *lshBench {
		return runLSHBench(lshBenchOpts{
			sizes: *lshSizes, exactMax: *lshExactMax,
			churnMax: *lshChurnMax, churnRounds: *lshChurnRounds, churnMuts: *lshChurnMuts,
			out: *lshOut, seed: *seed,
		}, stdout)
	}
	if *storeBench {
		return runStoreBench(*shardList, *goroutines, *ops, stdout)
	}
	if *reshardBench {
		return runReshardBench(reshardBenchOpts{
			goroutines: *goroutines, from: *reshardFrom, to: *reshardTo, seed: *seed,
		}, stdout)
	}
	if *walBench {
		pol, err := wal.ParseSyncPolicy(*walSync)
		if err != nil {
			return err
		}
		return runWALBench(walBenchOpts{
			dir: *walDir, sync: pol, segKB: *walSegKB,
			workers: *walWorkers, rounds: *walRounds, seed: *seed,
			conc: *walConc, gcOps: *walOps, out: *walOut,
		}, stdout)
	}
	if *sweepSel == "" && *seedList == "" && *scaleList == "" {
		return runOneShot(*seed, *only, stdout)
	}
	if *only != "" {
		// -only composes with the grid flags by narrowing the sweep to one
		// experiment; naming experiments two ways at once is ambiguous.
		if *sweepSel != "" {
			return fmt.Errorf("use either -only or -sweep to select experiments, not both")
		}
		*sweepSel = *only
	}
	grid, err := buildGrid(*sweepSel, *seedList, *scaleList, *seed)
	if err != nil {
		return err
	}
	report, err := sweep.Run(grid, sweep.Options{Parallelism: *parallelism})
	if err != nil {
		return err
	}
	if *asJSON {
		raw, err := report.JSON()
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, string(raw))
		return nil
	}
	fmt.Fprint(stdout, report.String())
	return nil
}

// writeHeapProfile snapshots live allocations after a final GC, so the
// profile shows what the selected benchmark retains, not collectable
// garbage.
func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	runtime.GC()
	return pprof.WriteHeapProfile(f)
}

// runOneShot preserves the original benchrunner behaviour (and the exact
// seeds of the tables recorded in EXPERIMENTS.md).
func runOneShot(seed uint64, only string, stdout io.Writer) error {
	if only != "" {
		spec, ok := experiments.SpecByID(only)
		if !ok {
			return fmt.Errorf("unknown experiment %q (want E1..E11)", only)
		}
		fmt.Fprintln(stdout, spec.Run(experiments.Params{Seed: seed, Scale: 1}))
		return nil
	}
	for _, t := range experiments.All(seed) {
		fmt.Fprintln(stdout, t)
	}
	return nil
}

// runStoreBench drives the contended-mutation comparison: goroutines
// writers split ops UpdateWorker calls over disjoint worker sets, per shard
// count, reporting throughput and the speedup over the single-RWMutex
// baseline (shards=1). Wall-clock scaling needs real cores: with fewer
// than `goroutines` CPUs the writers timeshare and speedups flatten.
func runStoreBench(shardList string, goroutines, ops int, stdout io.Writer) error {
	if goroutines < 1 {
		return fmt.Errorf("-goroutines must be >= 1")
	}
	if ops < goroutines {
		ops = goroutines
	}
	var shardCounts []int
	for _, s := range strings.Split(shardList, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || v < 1 {
			return fmt.Errorf("bad -shards entry %q", s)
		}
		shardCounts = append(shardCounts, v)
	}
	rng := stats.NewRNG(42)
	pop := workload.GeneratePopulation(workload.PopulationSpec{
		Workers: 2048, Archetypes: 8,
	}, rng.Split())
	if goroutines > len(pop.Workers) {
		// Every writer needs a non-empty disjoint worker set.
		goroutines = len(pop.Workers)
	}
	groups := make([][]*model.Worker, goroutines)
	for i, w := range pop.Workers {
		groups[i%goroutines] = append(groups[i%goroutines], w)
	}

	fmt.Fprintf(stdout, "store contention: %d updates, %d goroutines, GOMAXPROCS=%d\n",
		ops, goroutines, runtime.GOMAXPROCS(0))
	fmt.Fprintf(stdout, "%8s  %14s  %10s\n", "shards", "throughput", "speedup")
	var base float64
	for _, sc := range shardCounts {
		st := store.NewSharded(pop.Universe, sc)
		if err := st.BulkPutWorkers(pop.Workers); err != nil {
			return err
		}
		perG := ops / goroutines
		var wg sync.WaitGroup
		start := time.Now()
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				ws := groups[g]
				for i := 0; i < perG; i++ {
					w := ws[i%len(ws)]
					w.Computed[model.AttrAcceptanceRatio] = model.Num(float64(i%100) / 100)
					if err := st.UpdateWorker(w); err != nil {
						panic(err) // disjoint pre-inserted workers: cannot fail
					}
				}
			}(g)
		}
		wg.Wait()
		thr := float64(perG*goroutines) / time.Since(start).Seconds()
		if base == 0 {
			base = thr
		}
		fmt.Fprintf(stdout, "%8d  %11.0f/s  %9.2fx\n", sc, thr, thr/base)
	}
	return nil
}

type reshardBenchOpts struct {
	goroutines int
	from, to   int
	seed       uint64
}

// pct returns the p-th percentile of a latency sample (sorts in place).
func pct(lats []time.Duration, p float64) time.Duration {
	if len(lats) == 0 {
		return 0
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	return lats[int(p*float64(len(lats)-1))]
}

// runReshardBench measures the epoch-routed store's two headline costs.
//
// Phase 1 — mutation latency under a live split: writers hammer disjoint
// worker sets on a durable store while Reshard(from -> to) runs in the
// middle of the run. Each operation's latency lands in the baseline or
// the during-split sample depending on whether the reshard was in flight
// when it started; writers to a shard mid-handoff block only for that
// shard's migration, which is exactly the p99/max spike reported.
//
// Phase 2 — replica staleness vs write rate: a WAL-shipping replica polls
// the primary's directory while a paced writer syncs batches at each
// target rate; the sampled Staleness.Lag shows how far the follower
// trails the flushed log, and the catch-up time is how long after writes
// stop it takes to converge.
func runReshardBench(o reshardBenchOpts, stdout io.Writer) error {
	if o.goroutines < 1 || o.from < 1 || o.to < 1 {
		return fmt.Errorf("-goroutines, -reshardfrom and -reshardto must be >= 1")
	}
	root, err := os.MkdirTemp("", "reshardbench-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(root)

	rng := stats.NewRNG(o.seed)
	pop := workload.GeneratePopulation(workload.PopulationSpec{
		Workers: 4096, Archetypes: 8,
	}, rng.Split())
	goroutines := o.goroutines
	if goroutines > len(pop.Workers) {
		goroutines = len(pop.Workers)
	}

	// Phase 1: latency during a live split.
	st, err := store.NewDurable(pop.Universe, o.from, filepath.Join(root, "primary"), wal.Options{})
	if err != nil {
		return err
	}
	if err := st.BulkPutWorkers(pop.Workers); err != nil {
		return err
	}
	groups := make([][]*model.Worker, goroutines)
	for i, w := range pop.Workers {
		groups[i%goroutines] = append(groups[i%goroutines], w)
	}
	var splitting, stop atomic.Bool
	base := make([][]time.Duration, goroutines)
	split := make([][]time.Duration, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ws := groups[g]
			for i := 0; !stop.Load(); i++ {
				w := ws[i%len(ws)]
				during := splitting.Load()
				t0 := time.Now()
				w.Computed[model.AttrAcceptanceRatio] = model.Num(float64(i%100) / 100)
				if err := st.UpdateWorker(w); err != nil {
					panic(err) // disjoint pre-inserted workers: cannot fail
				}
				el := time.Since(t0)
				if during {
					split[g] = append(split[g], el)
				} else {
					base[g] = append(base[g], el)
				}
			}
		}(g)
	}
	const settle = 400 * time.Millisecond
	time.Sleep(settle) // baseline window
	splitting.Store(true)
	reshardStart := time.Now()
	if err := st.Reshard(o.to); err != nil {
		return err
	}
	reshardWall := time.Since(reshardStart)
	splitting.Store(false)
	time.Sleep(settle) // post-split window folds into the baseline
	stop.Store(true)
	wg.Wait()
	var baseAll, splitAll []time.Duration
	for g := 0; g < goroutines; g++ {
		baseAll = append(baseAll, base[g]...)
		splitAll = append(splitAll, split[g]...)
	}
	fmt.Fprintf(stdout, "live split %d -> %d shards under %d writers (GOMAXPROCS=%d):\n",
		o.from, o.to, goroutines, runtime.GOMAXPROCS(0))
	fmt.Fprintf(stdout, "  reshard wall time: %s  (%d entities)\n",
		reshardWall.Round(time.Microsecond), len(pop.Workers))
	fmt.Fprintf(stdout, "  %-16s  %8s  %10s  %10s  %10s\n", "window", "ops", "p50", "p99", "max")
	for _, w := range []struct {
		name string
		lats []time.Duration
	}{{"baseline", baseAll}, {"during split", splitAll}} {
		if len(w.lats) == 0 {
			fmt.Fprintf(stdout, "  %-16s  %8d\n", w.name, 0)
			continue
		}
		fmt.Fprintf(stdout, "  %-16s  %8d  %10s  %10s  %10s\n", w.name, len(w.lats),
			pct(w.lats, 0.50).Round(time.Nanosecond),
			pct(w.lats, 0.99).Round(time.Nanosecond),
			w.lats[len(w.lats)-1].Round(time.Nanosecond))
	}
	if err := st.Close(); err != nil {
		return err
	}

	// Phase 2: replica catch-up lag vs write rate.
	fmt.Fprintf(stdout, "\nreplica staleness vs write rate (poll every 10ms, sync every 25ms):\n")
	fmt.Fprintf(stdout, "  %10s  %8s  %10s  %10s  %12s\n", "rate", "writes", "mean lag", "max lag", "catch-up")
	for _, rate := range []int{2000, 10000, 50000} {
		dir := filepath.Join(root, fmt.Sprintf("rep-%d", rate))
		pst, err := store.NewDurable(pop.Universe, 4, dir, wal.Options{})
		if err != nil {
			return err
		}
		if err := pst.BulkPutWorkers(pop.Workers); err != nil {
			return err
		}
		if err := pst.SyncWAL(); err != nil {
			return err
		}
		rep, err := replica.Open(dir)
		if err != nil {
			return err
		}
		if _, err := rep.CatchUp(); err != nil {
			return err
		}
		rep.Run(10*time.Millisecond, nil)

		// Pace the writer: a batch every 25ms for one second, synced so
		// the replica can see it.
		const tick = 25 * time.Millisecond
		perTick := rate * int(tick) / int(time.Second)
		writes := 0
		var lagSamples []float64
		deadline := time.Now().Add(1 * time.Second)
		for i := 0; time.Now().Before(deadline); i++ {
			for j := 0; j < perTick; j++ {
				w := pop.Workers[(writes+j)%len(pop.Workers)]
				w.Computed[model.AttrAcceptanceRatio] = model.Num(float64(j%100) / 100)
				if err := pst.UpdateWorker(w); err != nil {
					return err
				}
			}
			writes += perTick
			if err := pst.SyncWAL(); err != nil {
				return err
			}
			// Steady-state shipping delay: how many committed primary
			// mutations the follower has not applied at this instant
			// (Staleness().Lag only reports flushed-but-unapplied records
			// as of the replica's own last pass, which a drained poll
			// leaves at zero).
			lagSamples = append(lagSamples, float64(pst.Version()-rep.AppliedVersion()))
			time.Sleep(tick)
		}
		if err := pst.SyncWAL(); err != nil {
			return err
		}
		catchStart := time.Now()
		for rep.AppliedVersion() < pst.Version() {
			if _, err := rep.CatchUp(); err != nil {
				return err
			}
		}
		catchUp := time.Since(catchStart)
		rep.Stop()
		var mean, max float64
		for _, l := range lagSamples {
			mean += l
			if l > max {
				max = l
			}
		}
		if len(lagSamples) > 0 {
			mean /= float64(len(lagSamples))
		}
		fmt.Fprintf(stdout, "  %8d/s  %8d  %10.1f  %10.0f  %12s\n",
			rate, writes, mean, max, catchUp.Round(time.Microsecond))
		if err := pst.Close(); err != nil {
			return err
		}
	}
	return nil
}

type walBenchOpts struct {
	dir     string
	sync    wal.SyncPolicy
	segKB   int
	workers int
	rounds  int
	seed    uint64
	conc    string
	gcOps   int
	out     string
}

func (o walBenchOpts) walOptions() wal.Options {
	return wal.Options{SegmentBytes: int64(o.segKB) << 10, Sync: o.sync}
}

// walSimConfig builds the -walbench trace workload: enough tasks to keep
// every worker busy each round, with one in-loop audit at the end so the
// checkpoint carries warm auditor state.
func walSimConfig(o walBenchOpts, rounds int, dir string) sim.Config {
	rng := stats.NewRNG(o.seed + 0xd1e5e1)
	pop := workload.GeneratePopulation(workload.PopulationSpec{
		Workers: o.workers, AcceptanceMean: 0.7, AcceptanceSpread: 0.25,
	}, rng.Split())
	batch := workload.GenerateTasks(workload.TaskSpec{
		Tasks: o.workers * rounds,
	}, pop, rng.Split())
	return sim.Config{
		Population: pop, Batch: batch, Rounds: rounds,
		FlagLowAcceptance: true,
		AuditEvery:        rounds,
		PersistDir:        dir,
		PersistWAL:        o.walOptions(),
		Seed:              o.seed,
	}
}

// runWALBench measures the three costs the durable-persistence layer
// trades between: raw append throughput per fsync policy, recovery time
// against trace length, and — the payoff — warm vs cold first-audit
// latency after a restart.
func runWALBench(o walBenchOpts, stdout io.Writer) error {
	if o.workers < 2 || o.rounds < 1 {
		return fmt.Errorf("-walworkers must be >= 2 and -walrounds >= 1")
	}
	root := o.dir
	if root == "" {
		tmp, err := os.MkdirTemp("", "walbench-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(tmp)
		root = tmp
	}

	// Phase 1: raw segmented-log append throughput per fsync policy, with
	// one serial appender. SyncInterval acks immediately (durability rides
	// the background ticker), so it tracks SyncNever; serial SyncAlways
	// pays a full fsync per append — the baseline the group-commit sweep
	// of phase 2 exists to beat.
	payload := bytes.Repeat([]byte{0xab}, 120)
	fmt.Fprintf(stdout, "wal append throughput (120-byte records, %d KiB segments):\n", o.segKB)
	for _, pol := range []wal.SyncPolicy{wal.SyncNever, wal.SyncOnRotate, wal.SyncInterval(0), wal.SyncAlways} {
		n := 50000
		if pol == wal.SyncAlways {
			n = 300 // every append fsyncs; keep the sample small
		}
		w, err := wal.Create(filepath.Join(root, "append-"+pol.String()), wal.Options{
			SegmentBytes: int64(o.segKB) << 10, Sync: pol,
		})
		if err != nil {
			return err
		}
		start := time.Now()
		for i := 1; i <= n; i++ {
			if err := w.Append(uint64(i), payload); err != nil {
				return err
			}
		}
		if err := w.Sync(); err != nil {
			return err
		}
		if err := w.Close(); err != nil {
			return err
		}
		el := time.Since(start)
		fmt.Fprintf(stdout, "  %-12s  %6d recs in %10s  %12.0f recs/s\n",
			pol, n, el.Round(time.Microsecond), float64(n)/el.Seconds())
	}

	// Phase 2: group-commit sweep — appender concurrency × sync policy
	// against a durable store (emits BENCH_wal.json via -walout).
	if err := runWALSweep(o, root, stdout); err != nil {
		return err
	}

	// Phase 3: durable simulation + recovery time across trace lengths.
	fmt.Fprintf(stdout, "\ndurable simulation and recovery (sync=%s, %d workers):\n", o.sync, o.workers)
	fmt.Fprintf(stdout, "  %6s  %8s  %9s  %10s  %10s\n", "rounds", "events", "versions", "sim", "recovery")
	type recovered struct {
		st  *store.Store
		man *store.Manifest
		log *eventlog.Log
		cfg sim.Config
	}
	var last recovered
	var ladder []int
	for _, div := range []int{4, 2, 1} {
		rounds := o.rounds / div
		if rounds < 1 {
			rounds = 1
		}
		if len(ladder) > 0 && ladder[len(ladder)-1] == rounds {
			continue // tiny -walrounds collapse adjacent scales
		}
		ladder = append(ladder, rounds)
	}
	for _, rounds := range ladder {
		dir := filepath.Join(root, fmt.Sprintf("trace-%dr", rounds))
		cfg := walSimConfig(o, rounds, dir)
		simStart := time.Now()
		res, err := sim.Run(cfg)
		if err != nil {
			return err
		}
		simEl := time.Since(simStart)
		events, versions := res.Log.Len(), res.Store.Version()
		if err := res.Close(); err != nil {
			return err
		}
		recStart := time.Now()
		st, man, err := store.Open(dir, 0, cfg.PersistWAL)
		if err != nil {
			return err
		}
		log, err := eventlog.OpenDurable(store.EventsDir(dir), cfg.PersistWAL)
		if err != nil {
			return err
		}
		recEl := time.Since(recStart)
		fmt.Fprintf(stdout, "  %6d  %8d  %9d  %10s  %10s\n",
			rounds, events, versions, simEl.Round(time.Millisecond), recEl.Round(time.Millisecond))
		if last.st != nil {
			last.st.Close()
			last.log.Close()
		}
		last = recovered{st: st, man: man, log: log, cfg: cfg}
	}
	defer last.st.Close()
	defer last.log.Close()

	// Phase 4: warm vs cold first audit over the recovered trace.
	fmt.Fprintf(stdout, "\nfirst audit after restart (largest trace):\n")
	coldStart := time.Now()
	coldEng := audit.New(last.st, last.log, last.cfg.AuditConfig)
	coldReports := coldEng.Audit()
	coldEl := time.Since(coldStart)
	fmt.Fprintf(stdout, "  cold engine (full scan): %10s\n", coldEl.Round(time.Microsecond))

	fullStart := time.Now()
	fullReports := fairness.CheckAll(last.st, last.log, last.cfg.AuditConfig)
	fullEl := time.Since(fullStart)
	fmt.Fprintf(stdout, "  fairness.CheckAll:       %10s\n", fullEl.Round(time.Microsecond))

	if len(last.man.Audit) == 0 {
		return fmt.Errorf("walbench: checkpoint carries no audit state")
	}
	var state audit.State
	if err := json.Unmarshal(last.man.Audit, &state); err != nil {
		return err
	}
	warmStart := time.Now()
	warmEng, err := audit.Resume(last.st, last.log, last.cfg.AuditConfig, &state)
	if err != nil {
		return err
	}
	warmReports := warmEng.Audit()
	warmEl := time.Since(warmStart)
	fmt.Fprintf(stdout, "  warm resume (delta):     %10s  (%.1fx faster than cold)\n",
		warmEl.Round(time.Microsecond), coldEl.Seconds()/warmEl.Seconds())

	if !audit.ViolationsEqual(warmReports, coldReports) || !audit.ViolationsEqual(warmReports, fullReports) {
		return fmt.Errorf("walbench: warm audit diverges from cold full scan")
	}
	for i := range warmReports {
		if warmReports[i].Checked != fullReports[i].Checked {
			return fmt.Errorf("walbench: %s checked %d (warm) vs %d (full)",
				warmReports[i].Axiom, warmReports[i].Checked, fullReports[i].Checked)
		}
	}
	fmt.Fprintln(stdout, "  determinism: warm == cold == full scan (violations and checked counts)")
	return nil
}

func buildGrid(sweepSel, seedList, scaleList string, defaultSeed uint64) (sweep.Grid, error) {
	var g sweep.Grid
	switch sweepSel {
	case "", "all":
		// empty Experiments means all
	default:
		for _, id := range strings.Split(sweepSel, ",") {
			id = strings.TrimSpace(id)
			if id != "" {
				g.Experiments = append(g.Experiments, id)
			}
		}
	}
	if seedList != "" {
		for _, s := range strings.Split(seedList, ",") {
			v, err := strconv.ParseUint(strings.TrimSpace(s), 10, 64)
			if err != nil {
				return g, fmt.Errorf("bad -seeds entry %q: %w", s, err)
			}
			g.Seeds = append(g.Seeds, v)
		}
	} else {
		g.Seeds = []uint64{defaultSeed}
	}
	if scaleList != "" {
		for _, s := range strings.Split(scaleList, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
			if err != nil {
				return g, fmt.Errorf("bad -scales entry %q: %w", s, err)
			}
			g.Scales = append(g.Scales, v)
		}
	}
	return g, nil
}
