// Command benchrunner regenerates every experiment table of DESIGN.md
// (E1–E8) and prints them in the format recorded in EXPERIMENTS.md.
//
// Usage:
//
//	benchrunner [-seed N] [-only E4]
//
// With -only, a single experiment is run.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	seed := flag.Uint64("seed", 42, "deterministic seed for all experiments")
	only := flag.String("only", "", "run a single experiment (E1..E8)")
	flag.Parse()

	tables := experiments.All(*seed)
	found := false
	for _, t := range tables {
		if *only != "" && t.ID != *only {
			continue
		}
		found = true
		fmt.Println(t)
	}
	if *only != "" && !found {
		fmt.Fprintf(os.Stderr, "benchrunner: unknown experiment %q (want E1..E8)\n", *only)
		os.Exit(2)
	}
}
