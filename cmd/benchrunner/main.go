// Command benchrunner regenerates the experiment tables of DESIGN.md
// (E1–E11), either one-shot in the format recorded in EXPERIMENTS.md or as
// a parallel parameter sweep over a grid of experiments × scales × seeds.
//
// Usage:
//
//	benchrunner [-seed N] [-only E4]
//	benchrunner -sweep E1,E4 [-seeds 1,2,3] [-scales 0.5,1,2] [-parallelism 8] [-json]
//
// The default mode runs every experiment once at the given seed. Sweep
// mode drives the same experiments through the internal/sweep worker pool:
// -sweep selects experiments ("all" for E1–E11), -seeds and -scales span
// the grid, -parallelism bounds the pool (default GOMAXPROCS), and -json
// switches the report from human tables to machine-readable JSON. Sweep
// results are deterministic for a given grid regardless of parallelism.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/experiments"
	"repro/internal/sweep"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return // -h/-help: usage already printed, exit 0
		}
		fmt.Fprintf(os.Stderr, "benchrunner: %v\n", err)
		os.Exit(2)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("benchrunner", flag.ContinueOnError)
	fs.SetOutput(stderr)
	seed := fs.Uint64("seed", 42, "deterministic seed (one-shot mode, and the default sweep seed)")
	only := fs.String("only", "", "run a single experiment (E1..E11)")
	sweepSel := fs.String("sweep", "", "comma-separated experiments to sweep, or \"all\"")
	seedList := fs.String("seeds", "", "comma-separated replicate seeds for the sweep grid")
	scaleList := fs.String("scales", "", "comma-separated scale factors for the sweep grid")
	parallelism := fs.Int("parallelism", 0, "sweep worker-pool size (0 = GOMAXPROCS)")
	asJSON := fs.Bool("json", false, "emit the sweep report as JSON instead of tables")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *sweepSel == "" && *seedList == "" && *scaleList == "" {
		return runOneShot(*seed, *only, stdout)
	}
	if *only != "" {
		// -only composes with the grid flags by narrowing the sweep to one
		// experiment; naming experiments two ways at once is ambiguous.
		if *sweepSel != "" {
			return fmt.Errorf("use either -only or -sweep to select experiments, not both")
		}
		*sweepSel = *only
	}
	grid, err := buildGrid(*sweepSel, *seedList, *scaleList, *seed)
	if err != nil {
		return err
	}
	report, err := sweep.Run(grid, sweep.Options{Parallelism: *parallelism})
	if err != nil {
		return err
	}
	if *asJSON {
		raw, err := report.JSON()
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, string(raw))
		return nil
	}
	fmt.Fprint(stdout, report.String())
	return nil
}

// runOneShot preserves the original benchrunner behaviour (and the exact
// seeds of the tables recorded in EXPERIMENTS.md).
func runOneShot(seed uint64, only string, stdout io.Writer) error {
	if only != "" {
		spec, ok := experiments.SpecByID(only)
		if !ok {
			return fmt.Errorf("unknown experiment %q (want E1..E11)", only)
		}
		fmt.Fprintln(stdout, spec.Run(experiments.Params{Seed: seed, Scale: 1}))
		return nil
	}
	for _, t := range experiments.All(seed) {
		fmt.Fprintln(stdout, t)
	}
	return nil
}

func buildGrid(sweepSel, seedList, scaleList string, defaultSeed uint64) (sweep.Grid, error) {
	var g sweep.Grid
	switch sweepSel {
	case "", "all":
		// empty Experiments means all
	default:
		for _, id := range strings.Split(sweepSel, ",") {
			id = strings.TrimSpace(id)
			if id != "" {
				g.Experiments = append(g.Experiments, id)
			}
		}
	}
	if seedList != "" {
		for _, s := range strings.Split(seedList, ",") {
			v, err := strconv.ParseUint(strings.TrimSpace(s), 10, 64)
			if err != nil {
				return g, fmt.Errorf("bad -seeds entry %q: %w", s, err)
			}
			g.Seeds = append(g.Seeds, v)
		}
	} else {
		g.Seeds = []uint64{defaultSeed}
	}
	if scaleList != "" {
		for _, s := range strings.Split(scaleList, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
			if err != nil {
				return g, fmt.Errorf("bad -scales entry %q: %w", s, err)
			}
			g.Scales = append(g.Scales, v)
		}
	}
	return g, nil
}
