// Command benchrunner regenerates the experiment tables of DESIGN.md
// (E1–E11), either one-shot in the format recorded in EXPERIMENTS.md or as
// a parallel parameter sweep over a grid of experiments × scales × seeds.
//
// Usage:
//
//	benchrunner [-seed N] [-only E4]
//	benchrunner -sweep E1,E4 [-seeds 1,2,3] [-scales 0.5,1,2] [-parallelism 8] [-json]
//	benchrunner -storebench [-goroutines 8] [-shards 1,2,4,8,16] [-ops 200000]
//
// The default mode runs every experiment once at the given seed. Sweep
// mode drives the same experiments through the internal/sweep worker pool:
// -sweep selects experiments ("all" for E1–E11), -seeds and -scales span
// the grid, -parallelism bounds the pool (default GOMAXPROCS), and -json
// switches the report from human tables to machine-readable JSON. Sweep
// results are deterministic for a given grid regardless of parallelism.
//
// Store-bench mode measures contended mutation throughput against the
// hash-sharded store at each shard count in -shards, with -goroutines
// concurrent writers issuing -ops updates in total — the quickest way to
// see the single-RWMutex baseline (shards=1) against the sharded layout on
// the current machine.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/experiments"
	"repro/internal/model"
	"repro/internal/stats"
	"repro/internal/store"
	"repro/internal/sweep"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return // -h/-help: usage already printed, exit 0
		}
		fmt.Fprintf(os.Stderr, "benchrunner: %v\n", err)
		os.Exit(2)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("benchrunner", flag.ContinueOnError)
	fs.SetOutput(stderr)
	seed := fs.Uint64("seed", 42, "deterministic seed (one-shot mode, and the default sweep seed)")
	only := fs.String("only", "", "run a single experiment (E1..E11)")
	sweepSel := fs.String("sweep", "", "comma-separated experiments to sweep, or \"all\"")
	seedList := fs.String("seeds", "", "comma-separated replicate seeds for the sweep grid")
	scaleList := fs.String("scales", "", "comma-separated scale factors for the sweep grid")
	parallelism := fs.Int("parallelism", 0, "sweep worker-pool size (0 = GOMAXPROCS)")
	asJSON := fs.Bool("json", false, "emit the sweep report as JSON instead of tables")
	storeBench := fs.Bool("storebench", false, "measure contended store mutation throughput per shard count")
	goroutines := fs.Int("goroutines", 8, "concurrent writers for -storebench")
	shardList := fs.String("shards", "1,2,4,8,16", "comma-separated shard counts for -storebench")
	ops := fs.Int("ops", 200000, "total mutations per -storebench cell")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *storeBench {
		return runStoreBench(*shardList, *goroutines, *ops, stdout)
	}
	if *sweepSel == "" && *seedList == "" && *scaleList == "" {
		return runOneShot(*seed, *only, stdout)
	}
	if *only != "" {
		// -only composes with the grid flags by narrowing the sweep to one
		// experiment; naming experiments two ways at once is ambiguous.
		if *sweepSel != "" {
			return fmt.Errorf("use either -only or -sweep to select experiments, not both")
		}
		*sweepSel = *only
	}
	grid, err := buildGrid(*sweepSel, *seedList, *scaleList, *seed)
	if err != nil {
		return err
	}
	report, err := sweep.Run(grid, sweep.Options{Parallelism: *parallelism})
	if err != nil {
		return err
	}
	if *asJSON {
		raw, err := report.JSON()
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, string(raw))
		return nil
	}
	fmt.Fprint(stdout, report.String())
	return nil
}

// runOneShot preserves the original benchrunner behaviour (and the exact
// seeds of the tables recorded in EXPERIMENTS.md).
func runOneShot(seed uint64, only string, stdout io.Writer) error {
	if only != "" {
		spec, ok := experiments.SpecByID(only)
		if !ok {
			return fmt.Errorf("unknown experiment %q (want E1..E11)", only)
		}
		fmt.Fprintln(stdout, spec.Run(experiments.Params{Seed: seed, Scale: 1}))
		return nil
	}
	for _, t := range experiments.All(seed) {
		fmt.Fprintln(stdout, t)
	}
	return nil
}

// runStoreBench drives the contended-mutation comparison: goroutines
// writers split ops UpdateWorker calls over disjoint worker sets, per shard
// count, reporting throughput and the speedup over the single-RWMutex
// baseline (shards=1). Wall-clock scaling needs real cores: with fewer
// than `goroutines` CPUs the writers timeshare and speedups flatten.
func runStoreBench(shardList string, goroutines, ops int, stdout io.Writer) error {
	if goroutines < 1 {
		return fmt.Errorf("-goroutines must be >= 1")
	}
	if ops < goroutines {
		ops = goroutines
	}
	var shardCounts []int
	for _, s := range strings.Split(shardList, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || v < 1 {
			return fmt.Errorf("bad -shards entry %q", s)
		}
		shardCounts = append(shardCounts, v)
	}
	rng := stats.NewRNG(42)
	pop := workload.GeneratePopulation(workload.PopulationSpec{
		Workers: 2048, Archetypes: 8,
	}, rng.Split())
	if goroutines > len(pop.Workers) {
		// Every writer needs a non-empty disjoint worker set.
		goroutines = len(pop.Workers)
	}
	groups := make([][]*model.Worker, goroutines)
	for i, w := range pop.Workers {
		groups[i%goroutines] = append(groups[i%goroutines], w)
	}

	fmt.Fprintf(stdout, "store contention: %d updates, %d goroutines, GOMAXPROCS=%d\n",
		ops, goroutines, runtime.GOMAXPROCS(0))
	fmt.Fprintf(stdout, "%8s  %14s  %10s\n", "shards", "throughput", "speedup")
	var base float64
	for _, sc := range shardCounts {
		st := store.NewSharded(pop.Universe, sc)
		if err := st.BulkPutWorkers(pop.Workers); err != nil {
			return err
		}
		perG := ops / goroutines
		var wg sync.WaitGroup
		start := time.Now()
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				ws := groups[g]
				for i := 0; i < perG; i++ {
					w := ws[i%len(ws)]
					w.Computed[model.AttrAcceptanceRatio] = model.Num(float64(i%100) / 100)
					if err := st.UpdateWorker(w); err != nil {
						panic(err) // disjoint pre-inserted workers: cannot fail
					}
				}
			}(g)
		}
		wg.Wait()
		thr := float64(perG*goroutines) / time.Since(start).Seconds()
		if base == 0 {
			base = thr
		}
		fmt.Fprintf(stdout, "%8d  %11.0f/s  %9.2fx\n", sc, thr, thr/base)
	}
	return nil
}

func buildGrid(sweepSel, seedList, scaleList string, defaultSeed uint64) (sweep.Grid, error) {
	var g sweep.Grid
	switch sweepSel {
	case "", "all":
		// empty Experiments means all
	default:
		for _, id := range strings.Split(sweepSel, ",") {
			id = strings.TrimSpace(id)
			if id != "" {
				g.Experiments = append(g.Experiments, id)
			}
		}
	}
	if seedList != "" {
		for _, s := range strings.Split(seedList, ",") {
			v, err := strconv.ParseUint(strings.TrimSpace(s), 10, 64)
			if err != nil {
				return g, fmt.Errorf("bad -seeds entry %q: %w", s, err)
			}
			g.Seeds = append(g.Seeds, v)
		}
	} else {
		g.Seeds = []uint64{defaultSeed}
	}
	if scaleList != "" {
		for _, s := range strings.Split(scaleList, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
			if err != nil {
				return g, fmt.Errorf("bad -scales entry %q: %w", s, err)
			}
			g.Scales = append(g.Scales, v)
		}
	}
	return g, nil
}
